(* Tests for Adpm_csp: constraint status semantics, the network store,
   propagation to fixpoint, AC-3, and the heuristic backtracking search. *)

open Adpm_util
open Adpm_interval
open Adpm_expr
open Adpm_csp

let v = Expr.var
let c = Expr.const

let status = Alcotest.testable Constr.pp_status ( = )
let dom = Alcotest.testable Domain.pp Domain.equal

(* {2 Constr} *)

let mk rel lhs rhs = Constr.make ~id:0 ~name:"c" lhs rel rhs

let test_constr_args () =
  let con = mk Constr.Le Expr.(v "a" + v "b") Expr.(v "b" + v "d") in
  Alcotest.(check (list string)) "dedup order" [ "a"; "b"; "d" ] (Constr.args con);
  Alcotest.(check int) "arity" 3 (Constr.arity con)

let test_check_point () =
  let con = mk Constr.Le Expr.(v "x" + c 1.) (c 3.) in
  let env2 = function "x" -> 2. | _ -> nan in
  let env3 = function "x" -> 3. | _ -> nan in
  Alcotest.(check bool) "2+1 <= 3" true (Constr.check_point env2 con);
  Alcotest.(check bool) "3+1 <= 3 fails" false (Constr.check_point env3 con);
  (* equality with tolerance *)
  let eq = mk Constr.Eq (v "x") (c 2.) in
  Alcotest.(check bool) "eq holds" true (Constr.check_point env2 eq);
  Alcotest.(check bool) "eq near-miss with eps" true
    (Constr.check_point ~eps:0.5 env3 (mk Constr.Eq (v "x") (c 2.6)))

let test_status_on_box () =
  let box_env lo hi = function "x" -> Interval.make lo hi | _ -> raise Not_found in
  let con = mk Constr.Le (v "x") (c 5.) in
  Alcotest.(check status) "satisfied" Constr.Satisfied
    (Constr.status_on_box (box_env 0. 5.) con);
  Alcotest.(check status) "violated" Constr.Violated
    (Constr.status_on_box (box_env 6. 7.) con);
  Alcotest.(check status) "consistent" Constr.Consistent
    (Constr.status_on_box (box_env 4. 6.) con);
  (* undefined everywhere => violated *)
  let sqrt_con = mk Constr.Ge (Expr.Sqrt (v "x")) (c 0.) in
  Alcotest.(check status) "undefined is violated" Constr.Violated
    (Constr.status_on_box (box_env (-4.) (-1.)) sqrt_con)

let test_eq_status () =
  let box_env lo hi = function "x" -> Interval.make lo hi | _ -> raise Not_found in
  let eq = mk Constr.Eq (v "x") (c 2.) in
  Alcotest.(check status) "point eq satisfied" Constr.Satisfied
    (Constr.status_on_box (box_env 2. 2.) eq);
  Alcotest.(check status) "range eq consistent" Constr.Consistent
    (Constr.status_on_box (box_env 1. 3.) eq);
  Alcotest.(check status) "disjoint eq violated" Constr.Violated
    (Constr.status_on_box (box_env 3. 4.) eq)

(* {2 Network} *)

let small_net () =
  let net = Network.create () in
  Network.add_prop net "x" (Domain.continuous 0. 10.);
  Network.add_prop net "y" (Domain.continuous 0. 10.);
  Network.add_prop net "lvl" (Domain.symbolic [ "hi"; "lo" ]);
  let c1 = Network.add_constraint net ~name:"sum" Expr.(v "x" + v "y") Constr.Le (c 12.) in
  let c2 = Network.add_constraint net ~name:"xmin" (v "x") Constr.Ge (c 2.) in
  (net, c1, c2)

let test_network_basics () =
  let net, c1, c2 = small_net () in
  Alcotest.(check (list string)) "prop order" [ "x"; "y"; "lvl" ]
    (Network.prop_names net);
  Alcotest.(check int) "constraint count" 2 (Network.constraint_count net);
  Alcotest.(check int) "beta x" 2 (Network.beta net "x");
  Alcotest.(check int) "beta y" 1 (Network.beta net "y");
  Alcotest.(check bool) "adjacency" true
    (List.exists (fun cc -> cc.Constr.id = c1.Constr.id) (Network.constraints_of_prop net "x"));
  Alcotest.(check bool) "c2 touches only x" true
    (Network.constraints_of_prop net "y"
    |> List.for_all (fun cc -> cc.Constr.id <> c2.Constr.id))

let test_network_validation () =
  let net, _, _ = small_net () in
  Alcotest.(check bool) "duplicate prop rejected" true
    (try
       Network.add_prop net "x" (Domain.continuous 0. 1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown constraint prop rejected" true
    (try
       ignore (Network.add_constraint net ~name:"bad" (v "zz") Constr.Le (c 0.));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "symbolic prop in constraint rejected" true
    (try
       ignore (Network.add_constraint net ~name:"bad" (v "lvl") Constr.Le (c 0.));
       false
     with Invalid_argument _ -> true)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_msg name expected f =
  match f () with
  | () -> Alcotest.failf "%s: expected an exception" name
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S appears in %S" name expected msg)
      true (contains msg expected)

let test_network_error_messages () =
  (* Lookup failures must name the missing entity, not just its kind:
     these messages are what a scenario author sees when a DDDL model
     references a property that was never declared. *)
  let net, _, _ = small_net () in
  check_msg "find_prop" "unknown property 'ghost'" (fun () ->
      ignore (Network.find_prop net "ghost"));
  check_msg "find_prop names the function" "Network.find_prop" (fun () ->
      ignore (Network.find_prop net "ghost"));
  check_msg "prop_id" "unknown property 'ghost'" (fun () ->
      ignore (Network.prop_id net "ghost"));
  check_msg "find_constraint" "unknown constraint id 99" (fun () ->
      ignore (Network.find_constraint net 99));
  check_msg "constraints_of_prop" "unknown property 'ghost'" (fun () ->
      ignore (Network.constraints_of_prop net "ghost"));
  check_msg "env_box unknown" "unknown property 'ghost'" (fun () ->
      ignore (Network.env_box net "ghost"));
  (* symbolic properties keep raising Unbound_variable (the HC4 contract:
     the environment has no box for them), not Invalid_argument *)
  Alcotest.(check bool) "env_box symbolic raises Unbound_variable" true
    (try
       ignore (Network.env_box net "lvl");
       false
     with Expr.Unbound_variable name -> name = "lvl")

let test_constr_args_memoized () =
  let con =
    mk Constr.Le Expr.(v "a" + (v "b" * v "a")) Expr.(v "b" + v "d")
  in
  let first = Constr.args con in
  Alcotest.(check (list string))
    "dedup'd lhs-then-rhs walk" [ "a"; "b"; "d" ] first;
  (* memoized: repeated calls return the same list physically *)
  Alcotest.(check bool) "same list physically" true (first == Constr.args con);
  Alcotest.(check (list string))
    "content stable across calls" [ "a"; "b"; "d" ] (Constr.args con)

let test_network_constraints_cached () =
  let net, c1, c2 = small_net () in
  let first = Network.constraints net in
  Alcotest.(check bool) "repeated call is physically equal" true
    (first == Network.constraints net);
  Alcotest.(check (list int)) "insertion order"
    [ c1.Constr.id; c2.Constr.id ]
    (List.map (fun cc -> cc.Constr.id) first);
  (* structural change invalidates: the cache must not serve a stale
     list that misses the new constraint *)
  let c3 = Network.add_constraint net ~name:"ymax" (v "y") Constr.Le (c 5.) in
  let after = Network.constraints net in
  Alcotest.(check bool) "add_constraint invalidates" true (first != after);
  Alcotest.(check (list int)) "new constraint present"
    [ c1.Constr.id; c2.Constr.id; c3.Constr.id ]
    (List.map (fun cc -> cc.Constr.id) after);
  Alcotest.(check bool) "fresh list cached again" true
    (after == Network.constraints net);
  (* adding a property also bumps the structural revision *)
  Network.add_prop net "z" (Domain.continuous 0. 1.);
  Alcotest.(check bool) "add_prop invalidates too" true
    (after != Network.constraints net)

let test_flat_views_dense () =
  let net, c1, c2 = small_net () in
  let carr = Network.constraint_array net in
  Alcotest.(check int) "constraint_array dense" 2 (Array.length carr);
  Alcotest.(check int) "slot 0 is its id" c1.Constr.id carr.(0).Constr.id;
  Alcotest.(check int) "slot 1 is its id" c2.Constr.id carr.(1).Constr.id;
  let adj = Network.adjacency_by_id net in
  Alcotest.(check int) "one row per prop" (Network.prop_count net)
    (Array.length adj);
  let xid = Network.prop_id net "x" and yid = Network.prop_id net "y" in
  Alcotest.(check (list int)) "x row, insertion order"
    [ c1.Constr.id; c2.Constr.id ]
    (Array.to_list adj.(xid));
  Alcotest.(check (list int)) "y row" [ c1.Constr.id ] (Array.to_list adj.(yid))

let test_network_assign () =
  let net, _, _ = small_net () in
  Network.assign net "x" (Value.Num 3.);
  Alcotest.(check (option (float 0.))) "assigned" (Some 3.)
    (Network.assigned_num net "x");
  Alcotest.(check bool) "bound" true (Network.is_bound net "x");
  Network.unassign net "x";
  Alcotest.(check bool) "unbound" false (Network.is_bound net "x");
  Alcotest.(check bool) "out of range rejected" true
    (try
       Network.assign net "x" (Value.Num 99.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       Network.assign net "x" (Value.Sym "hi");
       false
     with Invalid_argument _ -> true);
  Network.assign net "lvl" (Value.Sym "hi");
  Alcotest.(check bool) "symbolic assign ok" true (Network.is_bound net "lvl")

let test_network_alpha_status () =
  let net, c1, c2 = small_net () in
  Network.set_status net c1.Constr.id Constr.Violated;
  Alcotest.(check int) "alpha x" 1 (Network.alpha net "x");
  Alcotest.(check int) "alpha y" 1 (Network.alpha net "y");
  Network.set_status net c2.Constr.id Constr.Violated;
  Alcotest.(check int) "alpha x both" 2 (Network.alpha net "x");
  Alcotest.(check int) "violated count" 2 (List.length (Network.violated net));
  Network.reset_statuses net;
  Alcotest.(check int) "reset" 0 (List.length (Network.violated net))

let test_network_solved () =
  let net, _, _ = small_net () in
  Alcotest.(check bool) "not solved unbound" false (Network.solved net);
  Network.assign net "x" (Value.Num 3.);
  Network.assign net "y" (Value.Num 4.);
  Alcotest.(check bool) "solved (symbolic prop ignored)" true (Network.solved net);
  Network.assign net "x" (Value.Num 1.);
  Alcotest.(check bool) "violated xmin" false (Network.solved net)

let test_helps_direction () =
  let net, c1, c2 = small_net () in
  Alcotest.(check bool) "sum: decreasing x helps" true
    (Network.helps_direction net c1 "x" = `Down);
  Alcotest.(check bool) "xmin: increasing x helps" true
    (Network.helps_direction net c2 "x" = `Up);
  (* a declared override wins *)
  Network.declare_monotone net c1.Constr.id "x" Adpm_expr.Monotone.Decreasing;
  Alcotest.(check bool) "declared override" true
    (Network.helps_direction net c1 "x" = `Up)

let test_network_copy_isolated () =
  let net, _, _ = small_net () in
  Network.assign net "x" (Value.Num 3.);
  let snapshot = Network.copy net in
  Network.assign net "x" (Value.Num 5.);
  Alcotest.(check (option (float 0.))) "copy unaffected" (Some 3.)
    (Network.assigned_num snapshot "x");
  Network.unassign snapshot "x";
  Alcotest.(check (option (float 0.))) "original unaffected" (Some 5.)
    (Network.assigned_num net "x")

(* {2 Propagate} *)

let test_propagate_narrows () =
  let net, c1, _ = small_net () in
  Network.assign net "y" (Value.Num 8.);
  let outcome = Propagate.run net in
  let x_feasible = List.assoc "x" outcome.Propagate.feasible in
  (* x + 8 <= 12 -> x <= 4; x >= 2 *)
  (match Domain.hull x_feasible with
  | Some iv ->
    Alcotest.(check bool) "x in [2,4]" true
      (Interval.lo iv >= 1.99 && Interval.hi iv <= 4.01)
  | None -> Alcotest.fail "x should have a hull");
  Alcotest.(check bool) "statuses computed" true
    (List.mem_assoc c1.Constr.id outcome.Propagate.statuses);
  Alcotest.(check bool) "evaluations counted" true (outcome.Propagate.evaluations > 0);
  Alcotest.(check bool) "fixpoint" true outcome.Propagate.fixpoint

let test_propagate_detects_violation () =
  let net, c1, c2 = small_net () in
  Network.assign net "x" (Value.Num 1.);
  let outcome = Propagate.run_and_apply net in
  Alcotest.(check status) "xmin violated" Constr.Violated
    (Network.status net c2.Constr.id);
  ignore c1;
  ignore outcome

let test_propagate_pure_until_applied () =
  let net, _, _ = small_net () in
  let before = Network.feasible net "x" in
  let outcome = Propagate.run net in
  Alcotest.(check dom) "network untouched by run" before (Network.feasible net "x");
  Propagate.apply net outcome;
  Alcotest.(check bool) "applied" true
    (not (Domain.equal before (Network.feasible net "x"))
    || Network.status net 0 <> Constr.Consistent
    || true)

let test_propagate_idempotent () =
  let net, _, _ = small_net () in
  Network.assign net "y" (Value.Num 8.);
  let o1 = Propagate.run net in
  Propagate.apply net o1;
  let o2 = Propagate.run net in
  List.iter
    (fun (name, d1) ->
      let d2 = List.assoc name o2.Propagate.feasible in
      Alcotest.(check dom) ("fixpoint stable for " ^ name) d1 d2)
    o1.Propagate.feasible

let test_propagate_budget () =
  let net, _, _ = small_net () in
  let outcome = Propagate.run ~max_revisions:1 net in
  Alcotest.(check bool) "budget respected" true
    (outcome.Propagate.evaluations <= 1 + Network.constraint_count net)

let test_relaxed_feasible () =
  let net, _, _ = small_net () in
  Network.assign net "x" (Value.Num 3.);
  Network.assign net "y" (Value.Num 8.);
  let d, evals = Propagate.relaxed_feasible net "x" in
  (match Domain.hull d with
  | Some iv ->
    Alcotest.(check bool) "window [2,4]" true
      (Interval.lo iv >= 1.99 && Interval.hi iv <= 4.01)
  | None -> Alcotest.fail "expected window");
  Alcotest.(check bool) "evals counted" true (evals > 0);
  (* original assignment untouched *)
  Alcotest.(check (option (float 0.))) "x still 3" (Some 3.)
    (Network.assigned_num net "x")

(* Regression: [significantly_narrower] used to compare only interval
   widths, so a bound move between two infinite-width boxes
   ([-inf,+inf] -> [0,+inf]) never requeued neighbours and half-infinite
   chains stopped propagating. Constraint order matters: the chain links
   are revised (uselessly) before the anchor that feeds them, so reaching
   the fixpoint depends on the requeue. *)
let test_half_infinite_chain () =
  let net = Network.create () in
  Network.add_prop net "x0" (Domain.continuous neg_infinity infinity);
  Network.add_prop net "x1" (Domain.continuous neg_infinity infinity);
  Network.add_prop net "x2" (Domain.continuous neg_infinity infinity);
  ignore (Network.add_constraint net ~name:"c01" (v "x1") Constr.Ge (v "x0"));
  ignore (Network.add_constraint net ~name:"c12" (v "x2") Constr.Ge (v "x1"));
  ignore (Network.add_constraint net ~name:"anchor" (v "x0") Constr.Ge (c 0.));
  let outcome = Propagate.run net in
  let lo name =
    match Domain.hull (List.assoc name outcome.Propagate.feasible) with
    | Some iv -> Interval.lo iv
    | None -> Alcotest.fail (name ^ " wiped out")
  in
  let near_zero label x =
    Alcotest.(check bool) label true (Float.abs x <= 1e-6)
  in
  near_zero "anchor narrows x0" (lo "x0");
  near_zero "x1 >= 0 via requeue" (lo "x1");
  near_zero "x2 >= 0 via requeue" (lo "x2");
  Alcotest.(check bool) "fixpoint reached" true outcome.Propagate.fixpoint

(* {2 Incremental propagation} *)

let check_outcomes_equal label (full : Propagate.outcome)
    (incr : Propagate.outcome) =
  List.iter
    (fun (name, d) ->
      Alcotest.(check dom)
        (label ^ ": feasible " ^ name)
        d
        (List.assoc name incr.Propagate.feasible))
    full.Propagate.feasible;
  List.iter
    (fun (cid, s) ->
      Alcotest.(check status)
        (Printf.sprintf "%s: status of constraint %d" label cid)
        s
        (List.assoc cid incr.Propagate.statuses))
    full.Propagate.statuses

(* Run an incremental propagation under a memory tracer and return the
   outcome plus the engine label the Propagation_finished event reported
   ("incremental" for a dirty-seeded restart, "full" for a fallback). *)
let traced_incremental net =
  let open Adpm_trace in
  let buffer, sink = Sink.memory ~capacity:100 in
  let tracer = Tracer.create sink in
  let outcome = Propagate.run_incremental_and_apply ~tracer net in
  let engine =
    List.fold_left
      (fun acc stamped ->
        match stamped.Event.event with
        | Event.Propagation_finished { engine; _ } -> Some engine
        | _ -> acc)
      None (Sink.Ring.contents buffer)
  in
  (outcome, engine)

let test_incremental_matches_full_after_assign () =
  let net, _, _ = small_net () in
  ignore (Propagate.run_incremental_and_apply net);
  Network.assign net "y" (Value.Num 8.);
  let incr, engine = traced_incremental net in
  Alcotest.(check (option string)) "dirty-seeded restart used"
    (Some "incremental") engine;
  let net2, _, _ = small_net () in
  Network.assign net2 "y" (Value.Num 8.);
  let full = Propagate.run_full net2 in
  check_outcomes_equal "after assign" full incr

let test_incremental_fallback_on_unassign () =
  let net, _, _ = small_net () in
  Network.assign net "x" (Value.Num 9.);
  ignore (Propagate.run_incremental_and_apply net);
  Network.unassign net "x";
  let incr, engine = traced_incremental net in
  Alcotest.(check (option string)) "widening falls back to full"
    (Some "full") engine;
  let net2, _, _ = small_net () in
  let full = Propagate.run_full net2 in
  check_outcomes_equal "after unassign" full incr

let test_incremental_invalidated_by_add_constraint () =
  let net, _, _ = small_net () in
  ignore (Propagate.run_incremental_and_apply net);
  Alcotest.(check bool) "store persisted" true
    (Network.prop_state net <> None);
  let _c3 = Network.add_constraint net ~name:"ymax" (v "y") Constr.Le (c 5.) in
  Alcotest.(check bool) "structural change invalidates the store" true
    (Network.prop_state net = None);
  let incr, engine = traced_incremental net in
  Alcotest.(check (option string)) "restart is from scratch" (Some "full")
    engine;
  let net2, _, _ = small_net () in
  ignore (Network.add_constraint net2 ~name:"ymax" (v "y") Constr.Le (c 5.));
  let full = Propagate.run_full net2 in
  check_outcomes_equal "after add_constraint" full incr

(* Propagation soundness: every ground solution survives propagation. *)
let propagate_preserves_solutions =
  QCheck.Test.make ~name:"propagation preserves ground solutions" ~count:200
    (QCheck.make
       ~print:(fun (a, b) -> Printf.sprintf "x=%g y=%g" a b)
       QCheck.Gen.(
         let* a = float_range 2. 10. in
         let* b = float_range 0. 10. in
         return (a, b)))
    (fun (x, y) ->
      QCheck.assume (x +. y <= 12.);
      let net, _, _ = small_net () in
      let outcome = Propagate.run net in
      let ok name value =
        match Domain.hull (List.assoc name outcome.Propagate.feasible) with
        | Some iv -> Interval.mem value (Interval.inflate 1e-6 iv)
        | None -> false
      in
      ok "x" x && ok "y" y)

(* Propagation monotonicity: committing an assignment can only shrink the
   other properties' feasible subspaces. *)
let propagation_monotone =
  QCheck.Test.make ~name:"assignments only shrink feasible subspaces" ~count:100
    (QCheck.make ~print:string_of_float QCheck.Gen.(float_range 2. 10.))
    (fun x_value ->
      let net1, _, _ = small_net () in
      let before = Propagate.run net1 in
      let net2, _, _ = small_net () in
      Network.assign net2 "x" (Value.Num x_value);
      let after = Propagate.run net2 in
      let hull_of outcome name =
        Domain.hull (List.assoc name outcome.Propagate.feasible)
      in
      match (hull_of before "y", hull_of after "y") with
      | Some b, Some a -> Interval.subset a (Interval.inflate 1e-9 b)
      | Some _, None -> true (* wiped out: trivially a subset *)
      | None, _ -> false)

(* {2 Fcsp + AC-3} *)

let triangle_csp () =
  (* x < y < z over {0,1,2} *)
  let lt a b = a < b in
  Fcsp.make ~nvars:3
    ~domains:(Array.make 3 [ 0; 1; 2 ])
    ~constraints:[ (0, 1, lt); (1, 2, lt) ]

let test_ac3_prunes () =
  let csp = triangle_csp () in
  match Fcsp.ac3 csp with
  | Fcsp.Inconsistent, _ -> Alcotest.fail "consistent CSP flagged inconsistent"
  | Fcsp.Consistent domains, revisions ->
    Alcotest.(check (list int)) "x pruned" [ 0 ] domains.(0);
    Alcotest.(check (list int)) "y pruned" [ 1 ] domains.(1);
    Alcotest.(check (list int)) "z pruned" [ 2 ] domains.(2);
    Alcotest.(check bool) "revisions counted" true (revisions > 0)

let test_ac3_wipeout () =
  let neq a b = a <> b in
  let csp =
    Fcsp.make ~nvars:3
      ~domains:(Array.make 3 [ 0; 1 ])
      ~constraints:[ (0, 1, neq); (1, 2, neq); (0, 2, neq) ]
  in
  (* 3-coloring with 2 colors: AC alone does not detect it, but search must
     fail *)
  let stats = Search.solve ~heuristic:Search.Min_domain csp in
  Alcotest.(check bool) "unsatisfiable" true (stats.Search.solution = None)

let test_solutions_enumeration () =
  let csp = triangle_csp () in
  let sols = Fcsp.solutions csp in
  Alcotest.(check int) "unique solution" 1 (List.length sols);
  Alcotest.(check bool) "it is 0<1<2" true
    (match sols with [ a ] -> a = [| 0; 1; 2 |] | _ -> false)

let test_fcsp_validation () =
  Alcotest.(check bool) "bad scope rejected" true
    (try
       ignore (Fcsp.make ~nvars:2 ~domains:[| [ 0 ]; [ 0 ] |] ~constraints:[ (0, 2, ( = )) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "self-loop rejected" true
    (try
       ignore (Fcsp.make ~nvars:2 ~domains:[| [ 0 ]; [ 0 ] |] ~constraints:[ (1, 1, ( = )) ]);
       false
     with Invalid_argument _ -> true)

(* All heuristics agree with brute-force satisfiability. *)
let search_agrees_with_bruteforce =
  QCheck.Test.make ~name:"search finds a solution iff one exists" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let rng = Rng.create seed in
      let csp =
        Search.random_csp rng ~nvars:6 ~domain_size:3 ~density:0.5
          ~tightness:0.4
      in
      let expected = Fcsp.solutions ~limit:1 csp <> [] in
      List.for_all
        (fun heuristic ->
          List.for_all
            (fun inference ->
              let stats =
                Search.solve ~rng:(Rng.create seed) ~inference ~heuristic csp
              in
              let found = stats.Search.solution <> None in
              let valid =
                match stats.Search.solution with
                | Some a -> Fcsp.consistent_assignment csp a
                | None -> true
              in
              found = expected && valid)
            [ Search.No_inference; Search.Forward_check; Search.Mac ])
        Search.all_heuristics)

let test_search_stats_sane () =
  let rng = Rng.create 5 in
  let csp =
    Search.random_csp rng ~nvars:8 ~domain_size:4 ~density:0.4 ~tightness:0.3
  in
  let stats = Search.solve ~heuristic:Search.Min_domain csp in
  Alcotest.(check bool) "nodes positive" true (stats.Search.nodes > 0);
  Alcotest.(check bool) "checks positive" true (stats.Search.checks > 0)

let suite =
  [
    ("constraint args", `Quick, test_constr_args);
    ("check point", `Quick, test_check_point);
    ("status on box", `Quick, test_status_on_box);
    ("equality status", `Quick, test_eq_status);
    ("network basics", `Quick, test_network_basics);
    ("network validation", `Quick, test_network_validation);
    ("lookup errors name the entity", `Quick, test_network_error_messages);
    ("constraint args memoized", `Quick, test_constr_args_memoized);
    ("constraints list cached on revision", `Quick,
     test_network_constraints_cached);
    ("flat views are dense and ordered", `Quick, test_flat_views_dense);
    ("network assignment", `Quick, test_network_assign);
    ("network alpha/status", `Quick, test_network_alpha_status);
    ("network solved", `Quick, test_network_solved);
    ("helps direction", `Quick, test_helps_direction);
    ("network copy isolation", `Quick, test_network_copy_isolated);
    ("propagation narrows", `Quick, test_propagate_narrows);
    ("propagation detects violations", `Quick, test_propagate_detects_violation);
    ("propagation pure until applied", `Quick, test_propagate_pure_until_applied);
    ("propagation idempotent at fixpoint", `Quick, test_propagate_idempotent);
    ("propagation revision budget", `Quick, test_propagate_budget);
    ("relaxed feasibility", `Quick, test_relaxed_feasible);
    ("half-infinite chain propagates", `Quick, test_half_infinite_chain);
    ("incremental = full after assign", `Quick,
     test_incremental_matches_full_after_assign);
    ("incremental falls back on unassign", `Quick,
     test_incremental_fallback_on_unassign);
    ("incremental store invalidated by add_constraint", `Quick,
     test_incremental_invalidated_by_add_constraint);
    QCheck_alcotest.to_alcotest propagate_preserves_solutions;
    QCheck_alcotest.to_alcotest propagation_monotone;
    ("AC-3 prunes", `Quick, test_ac3_prunes);
    ("2-coloring of a triangle fails", `Quick, test_ac3_wipeout);
    ("exhaustive enumeration", `Quick, test_solutions_enumeration);
    ("fcsp validation", `Quick, test_fcsp_validation);
    QCheck_alcotest.to_alcotest search_agrees_with_bruteforce;
    ("search statistics", `Quick, test_search_stats_sane);
  ]
