(* Tests for Adpm_trace and the replay driver: JSON codec round-trips,
   ring-buffer bounding, live capture through the engine, trace analysis,
   and deterministic replay across scenarios and modes. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
open Adpm_trace

let quick_cfg mode seed =
  let cfg = Config.default ~mode ~seed in
  { cfg with Config.max_ops = 500 }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  scan 0

let stamp i event = { Event.seq = i; clock = i / 2; event }

(* One event of every constructor, with awkward payloads: non-ASCII and
   quoted strings, non-representable decimals, empty and non-empty lists. *)
let sample_events =
  let synthesis_op =
    {
      Event.op_designer = "desi\"gner, one\n(α)";
      op_problem = 3;
      op_kind =
        Event.Synthesis [ ("w1", Event.Vnum 0.1); ("mode", Event.Vsym "low") ];
      op_motivated_by = [ 2; 7 ];
    }
  in
  let decompose_op =
    {
      Event.op_designer = "lead";
      op_problem = 1;
      op_kind =
        Event.Decompose
          [
            {
              Event.sb_name = "rf front-end";
              sb_owner = "ann";
              sb_inputs = [ "f0" ];
              sb_outputs = [ "gain"; "nf" ];
              sb_constraints = [ 1; 4 ];
              sb_depends_on = [];
              sb_object = Some "lna";
            };
            {
              Event.sb_name = "baseband";
              sb_owner = "bob";
              sb_inputs = [];
              sb_outputs = [ "bw" ];
              sb_constraints = [];
              sb_depends_on = [ "rf front-end" ];
              sb_object = None;
            };
          ];
      op_motivated_by = [];
    }
  in
  let verification_op =
    {
      Event.op_designer = "ann";
      op_problem = 2;
      op_kind = Event.Verification [ 1; 2; 3 ];
      op_motivated_by = [ 1 ];
    }
  in
  List.mapi stamp
    [
      Event.Run_started
        { scenario = "lna"; mode = "ADPM"; seed = 42; engine = "incremental" };
      Event.Op_submitted { op = synthesis_op; choose_evaluations = 5 };
      Event.Op_submitted { op = decompose_op; choose_evaluations = 0 };
      Event.Op_submitted { op = verification_op; choose_evaluations = 1 };
      Event.Op_executed
        {
          index = 1;
          designer = "ann";
          kind = "synthesis";
          evaluations = 17;
          newly_violated = [ 4 ];
          resolved = [];
          skipped = [ 9 ];
          spin = true;
        };
      Event.Propagation_started { constraints = 21 };
      Event.Propagation_finished
        {
          engine = "incremental";
          seeded = 21;
          evaluations = 63;
          revisions = 63;
          waves = [ 21; 30; 12 ];
          empties = 1;
          fixpoint = true;
        };
      Event.Constraint_status_changed
        { cid = 4; old_status = Event.Consistent; new_status = Event.Violated };
      Event.Notification_pushed
        {
          recipient = "bob";
          op_index = 7;
          events = [ "violation-detected:4"; "feasible-reduced:bw" ];
          violations = [ 4 ];
        };
      Event.Op_completed { index = 7; at = 11 };
      Event.Turn_started { designer = "bob"; at = 12 };
      Event.Notification_delivered
        {
          recipient = "bob";
          op_index = 7;
          sent_at = 11;
          delivered_at = 14;
          events = [ "violation-detected:4" ];
          violations = [ 4 ];
        };
      Event.Designer_decision
        {
          designer = "bob";
          heuristic = Event.Smallest_subspace;
          target = Some "bw";
          alpha = 1;
          beta = 3;
        };
      Event.Designer_decision
        {
          designer = "ann";
          heuristic = Event.Conflict_resolution;
          target = None;
          alpha = 0;
          beta = 0;
        };
      Event.Requirement_shifted { prop = "p_budget"; value = 132.25; at = 30 };
      Event.Run_finished
        {
          completed = true;
          operations = 37;
          evaluations = 1042;
          setup_evaluations = 63;
          spins = 2;
          violations = [ 4; 6 ];
        };
    ]

(* {2 JSON} *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 0.1;
      Json.Num (-3.25);
      Json.Num 1e17;
      Json.Num 123456789.;
      Json.Str "plain";
      Json.Str "qu\"ote,\ncomma — ünïcode";
      Json.Arr [ Json.Num 1.; Json.Str "x"; Json.Null ];
      Json.Obj [ ("a", Json.Arr []); ("b", Json.Obj [ ("c", Json.Bool false) ]) ];
    ]
  in
  List.iter
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" (Json.to_string j))
          true (j = j')
      | Error e -> Alcotest.failf "parse error on %s: %s" (Json.to_string j) e)
    samples

let test_json_escapes () =
  match Json.parse {|{"s":"aé\n\t\"\\b","n":-0.5e2}|} with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok j ->
    Alcotest.(check (option string))
      "unicode escape decoded"
      (Some "a\xc3\xa9\n\t\"\\b")
      (Option.bind (Json.member "s" j) Json.to_str);
    Alcotest.(check (option (float 1e-9)))
      "exponent" (Some (-50.))
      (Option.bind (Json.member "n" j) Json.to_float)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted garbage %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "trailing {} junk"; "\"unterminated" ]

(* {2 Hardened string decoding (PR 8 regressions)} *)

(* U+1F600 is JSON-escaped as the surrogate pair \uD83D \uDE00, which
   must decode to the single 4-byte UTF-8 sequence F0 9F 98 80 — not to
   two 3-byte CESU-8 sequences. *)
let test_json_surrogate_pairs () =
  (match Json.parse {|"\uD83D\uDE00"|} with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "astral code point" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "surrogate pair rejected: %s" e);
  (* raw astral-plane UTF-8 must survive a print/parse cycle unchanged *)
  (match Json.parse (Json.to_string (Json.Str "\xf0\x9f\x98\x80 ok")) with
  | Ok (Json.Str s) -> Alcotest.(check string) "raw astral" "\xf0\x9f\x98\x80 ok" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "raw astral failed: %s" e);
  (* lone or mismatched surrogates are protocol corruption, not data *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted lone surrogate in %S" s
      | Error _ -> ())
    [
      {|"\uD83D"|};  (* lone high at end *)
      {|"\uD83Dx"|};  (* high followed by a plain char *)
      {|"\uD83D\n"|};  (* high followed by a non-\u escape *)
      {|"\uD83D\uD83D"|};  (* high followed by another high *)
      {|"\uDE00"|};  (* lone low *)
    ]

(* int_of_string accepts underscores, signs and nested 0x prefixes; the
   JSON grammar wants exactly four hex digits. *)
let test_json_strict_hex_escapes () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed escape in %S" s
      | Error _ -> ())
    [
      {|"\u1_23"|}; {|"\u-123"|}; {|"\u+123"|}; {|"\u0x41"|}; {|"\u12"|};
      {|"\u"|}; {|"\uGHIJ"|}; {|"\u 041"|};
    ];
  (match Json.parse {|"\u0041\u00e9\u4e16"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "BMP escapes" "A\xc3\xa9\xe4\xb8\x96" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "valid escapes rejected: %s" e)

(* Pin the documented encoder contract: non-finite floats inside Num
   print as null (and so round-trip to Null), finite floats round-trip
   exactly, and finite_num is the absent-field escape hatch. *)
let test_json_nan_contract () =
  List.iter
    (fun f ->
      Alcotest.(check string)
        "non-finite prints null" "null"
        (Json.to_string (Json.Num f));
      Alcotest.(check bool)
        "round-trips to Null" true
        (Json.parse (Json.to_string (Json.Num f)) = Ok Json.Null);
      Alcotest.(check bool) "finite_num refuses" true (Json.finite_num f = None))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  Alcotest.(check bool)
    "finite_num accepts" true
    (Json.finite_num 2.5 = Some (Json.Num 2.5));
  Alcotest.(check bool)
    "finite round-trip" true
    (Json.parse (Json.to_string (Json.Num 0.30000000000000004))
    = Ok (Json.Num 0.30000000000000004))

(* {2 QCheck: codec round-trip fuzz} *)

let gen_json_string =
  (* adversarial strings: control chars, quotes, backslashes, multi-byte
     UTF-8 (including astral plane), mixed with plain ASCII *)
  QCheck.Gen.(
    let fragment =
      oneof
        [
          map (String.make 1) (char_range 'a' 'z');
          map (String.make 1) (char_range '\000' '\031');
          oneofl
            [
              "\""; "\\"; "/"; "\xc3\xa9"; "\xe4\xb8\x96"; "\xf0\x9f\x98\x80";
              "\\u0041"; "\\uD83D"; "\n"; "\t"; " ";
            ];
        ]
    in
    map (String.concat "") (list_size (int_bound 12) fragment))

let gen_json =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              (* integral and awkward-decimal floats, all finite *)
              map (fun i -> Json.Num (float_of_int i)) small_signed_int;
              map (fun f -> Json.Num f) (float_bound_inclusive 1e6);
              map (fun s -> Json.Str s) gen_json_string;
            ]
        in
        if n <= 0 then scalar
        else
          frequency
            [
              (3, scalar);
              (1, map (fun l -> Json.Arr l) (list_size (int_bound 4) (self (n / 2))));
              ( 1,
                map
                  (fun l -> Json.Obj l)
                  (list_size (int_bound 4)
                     (pair gen_json_string (self (n / 2)))) );
            ]))

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"json print/parse round-trip" ~count:500
    (QCheck.make gen_json ~print:Json.to_string)
    (fun j -> Json.parse (Json.to_string j) = Ok j)

(* hostile input must never raise out of [parse] — a result, Ok or Error,
   is the only acceptable outcome for the daemon's wire layer *)
let qcheck_json_parse_total =
  QCheck.Test.make ~name:"json parse is total on byte soup" ~count:500
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun s ->
      match Json.parse s with Ok _ | Error _ -> true)

(* {2 Codec round-trip} *)

let test_codec_roundtrip () =
  List.iter
    (fun stamped ->
      let line = Codec.to_line stamped in
      match Codec.of_line line with
      | Ok decoded ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trip %s" (Event.kind_label stamped.Event.event))
          true (decoded = stamped)
      | Error e -> Alcotest.failf "decode error on %s: %s" line e)
    sample_events

let test_codec_file_roundtrip () =
  let path = Filename.temp_file "adpm_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Sink.jsonl_file path in
      List.iter sink.Sink.write sample_events;
      sink.Sink.close ();
      match Codec.read_file path with
      | Ok events ->
        Alcotest.(check bool) "file round-trip" true (events = sample_events)
      | Error e -> Alcotest.failf "read_file: %s" e)

let test_codec_rejects_malformed () =
  List.iter
    (fun line ->
      match Codec.of_line line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "{}";
      {|{"seq":0,"clock":0,"type":"no_such_event"}|};
      {|{"seq":0,"clock":0,"type":"run_started","scenario":"x","mode":"ADPM"}|};
      "[1,2,3]";
    ]

(* {2 Sinks} *)

let test_ring_bounding () =
  let buffer, sink = Sink.memory ~capacity:4 in
  List.iter sink.Sink.write sample_events;
  let total = List.length sample_events in
  Alcotest.(check int) "stored" 4 (Sink.Ring.stored buffer);
  Alcotest.(check int) "dropped" (total - 4) (Sink.Ring.dropped buffer);
  Alcotest.(check int) "capacity" 4 (Sink.Ring.capacity buffer);
  let kept = Sink.Ring.contents buffer in
  let expected =
    List.filteri (fun i _ -> i >= total - 4) sample_events
  in
  Alcotest.(check bool) "most recent, oldest first" true (kept = expected);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Sink.Ring.create: capacity must be positive")
    (fun () -> ignore (Sink.Ring.create ~capacity:0))

let test_tee_and_null () =
  let b1, s1 = Sink.memory ~capacity:10 in
  let b2, s2 = Sink.memory ~capacity:10 in
  let tee = Sink.tee s1 s2 in
  List.iteri (fun i e -> if i < 3 then tee.Sink.write e) sample_events;
  tee.Sink.close ();
  Alcotest.(check int) "left got all" 3 (Sink.Ring.stored b1);
  Alcotest.(check int) "right got all" 3 (Sink.Ring.stored b2);
  Sink.null.Sink.write (List.hd sample_events);
  Sink.null.Sink.close ()

let test_tracer_stamping () =
  let buffer, sink = Sink.memory ~capacity:100 in
  let tr = Tracer.create sink in
  Alcotest.(check bool) "created tracer active" true (Tracer.active tr);
  Alcotest.(check bool) "null tracer inactive" false (Tracer.active Tracer.null);
  Tracer.emit tr (Event.Propagation_started { constraints = 1 });
  Tracer.set_clock tr 7;
  Tracer.emit tr (Event.Propagation_started { constraints = 2 });
  (* emitting through the null tracer is a silent no-op *)
  Tracer.emit Tracer.null (Event.Propagation_started { constraints = 3 });
  match Sink.Ring.contents buffer with
  | [ a; b ] ->
    Alcotest.(check int) "first seq" 0 a.Event.seq;
    Alcotest.(check int) "first clock" 0 a.Event.clock;
    Alcotest.(check int) "second seq" 1 b.Event.seq;
    Alcotest.(check int) "second clock" 7 b.Event.clock
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

(* {2 Live capture through the engine} *)

let capture mode seed scenario =
  let buffer, sink = Sink.memory ~capacity:100_000 in
  let tracer = Tracer.create sink in
  let outcome = Engine.run ~tracer (quick_cfg mode seed) scenario in
  Tracer.close tracer;
  (outcome, Sink.Ring.contents buffer)

let test_live_trace_shape () =
  let outcome, events = capture Dpm.Adpm 1 Lna.scenario in
  let summary = outcome.Engine.o_summary in
  (match events with
  | { Event.event = Event.Run_started { scenario; mode; seed; engine }; _ } :: _
    ->
    Alcotest.(check string) "scenario" "lna" scenario;
    Alcotest.(check string) "mode" "ADPM" mode;
    Alcotest.(check int) "seed" 1 seed;
    Alcotest.(check string) "engine" "incremental" engine
  | _ -> Alcotest.fail "first event must be run_started");
  (match List.rev events with
  | { Event.event = Event.Run_finished { operations; completed; _ }; _ } :: _
    ->
    Alcotest.(check int) "N_O recorded" summary.Metrics.s_operations operations;
    Alcotest.(check bool) "completed recorded" summary.Metrics.s_completed
      completed
  | _ -> Alcotest.fail "last event must be run_finished");
  let submitted =
    List.length
      (List.filter
         (fun s ->
           match s.Event.event with Event.Op_submitted _ -> true | _ -> false)
         events)
  in
  Alcotest.(check int) "one op_submitted per op" summary.Metrics.s_operations
    submitted;
  let decisions =
    List.filter
      (fun s ->
        match s.Event.event with Event.Designer_decision _ -> true | _ -> false)
      events
  in
  Alcotest.(check bool) "designer decisions recorded" true (decisions <> []);
  ignore
    (List.fold_left
       (fun (seq, clock) s ->
         Alcotest.(check int) "seq is dense" seq s.Event.seq;
         Alcotest.(check bool) "clock is monotone" true (s.Event.clock >= clock);
         (seq + 1, s.Event.clock))
       (0, 0) events)

let test_disabled_tracing_changes_nothing () =
  let baseline = Engine.run (quick_cfg Dpm.Adpm 3 ) Lna.scenario in
  let traced, _events = capture Dpm.Adpm 3 Lna.scenario in
  Alcotest.(check int) "same ops"
    baseline.Engine.o_summary.Metrics.s_operations
    traced.Engine.o_summary.Metrics.s_operations;
  Alcotest.(check int) "same evals"
    baseline.Engine.o_summary.Metrics.s_evaluations
    traced.Engine.o_summary.Metrics.s_evaluations

(* {2 Analysis} *)

let test_analyze () =
  let outcome, events = capture Dpm.Adpm 1 Sensor.scenario in
  let report = Analyze.analyze events in
  Alcotest.(check (option string)) "scenario" (Some "sensor")
    report.Analyze.r_scenario;
  Alcotest.(check int) "operations"
    outcome.Engine.o_summary.Metrics.s_operations report.Analyze.r_operations;
  Alcotest.(check bool) "adpm run propagates" true
    (report.Analyze.r_propagations > 0);
  Alcotest.(check bool) "waves recorded" true
    (report.Analyze.r_wave_sizes <> []);
  let rendered = Analyze.render report in
  Alcotest.(check bool) "render mentions scenario" true
    (contains ~sub:"sensor" rendered);
  match Json.parse (Json.to_string (Analyze.to_json report)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "analysis JSON does not re-parse: %s" e

(* {2 Replay} *)

let replay_scenarios = [ Simple.scenario; Lna.scenario; Sensor.scenario ]

let test_replay_convergence () =
  List.iter
    (fun scenario ->
      List.iter
        (fun mode ->
          List.iter
            (fun seed ->
              let _, events = capture mode seed scenario in
              let report = Replay.run ~resolve:(Scenario.resolver replay_scenarios) events in
              let label =
                Printf.sprintf "%s/%s seed %d"
                  scenario.Scenario.sc_name (Dpm.mode_to_string mode) seed
              in
              if not (Replay.converged report) then
                Alcotest.failf "%s diverged:\n%s" label (Replay.render report);
              Alcotest.(check bool)
                (label ^ " replayed every op")
                true
                (report.Replay.rp_operations > 0))
            [ 1; 2 ])
        [ Dpm.Conventional; Dpm.Adpm ])
    [ Simple.scenario; Lna.scenario ]

let test_replay_through_file () =
  let path = Filename.temp_file "adpm_replay" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let tracer = Tracer.create (Sink.jsonl_file path) in
      let _ = Engine.run ~tracer (quick_cfg Dpm.Adpm 5) Sensor.scenario in
      Tracer.close tracer;
      match Codec.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok events ->
        let report = Replay.run ~resolve:(Scenario.resolver replay_scenarios) events in
        if not (Replay.converged report) then
          Alcotest.failf "file replay diverged:\n%s" (Replay.render report))

let test_replay_detects_tampering () =
  let _, events = capture Dpm.Adpm 1 Lna.scenario in
  let tampered =
    List.map
      (fun s ->
        match s.Event.event with
        | Event.Run_finished
            {
              completed;
              operations;
              evaluations;
              setup_evaluations;
              spins;
              violations;
            } ->
          {
            s with
            Event.event =
              Event.Run_finished
                {
                  completed;
                  operations = operations + 1;
                  evaluations;
                  setup_evaluations;
                  spins;
                  violations;
                };
          }
        | _ -> s)
      events
  in
  let report = Replay.run ~resolve:(Scenario.resolver replay_scenarios) tampered in
  Alcotest.(check bool) "tampered totals detected" false
    (Replay.converged report)

let test_replay_rejects_unusable_traces () =
  Alcotest.check_raises "empty trace"
    (Replay.Replay_error "trace contains no run_started event") (fun () ->
      ignore (Replay.run ~resolve:(Scenario.resolver replay_scenarios) []));
  let bogus =
    [
      stamp 0
        (Event.Run_started
           { scenario = "nope"; mode = "ADPM"; seed = 1; engine = "full" });
    ]
  in
  match Replay.run ~resolve:(Scenario.resolver replay_scenarios) bogus with
  | exception Replay.Replay_error _ -> ()
  | _ -> Alcotest.fail "unknown scenario must raise"

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "json surrogate pairs" `Quick test_json_surrogate_pairs;
    Alcotest.test_case "json strict hex escapes" `Quick
      test_json_strict_hex_escapes;
    Alcotest.test_case "json nan contract" `Quick test_json_nan_contract;
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_json_parse_total;
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec file round-trip" `Quick test_codec_file_roundtrip;
    Alcotest.test_case "codec rejects malformed" `Quick
      test_codec_rejects_malformed;
    Alcotest.test_case "ring bounding" `Quick test_ring_bounding;
    Alcotest.test_case "tee and null sinks" `Quick test_tee_and_null;
    Alcotest.test_case "tracer stamping" `Quick test_tracer_stamping;
    Alcotest.test_case "live trace shape" `Quick test_live_trace_shape;
    Alcotest.test_case "tracing is observationally inert" `Quick
      test_disabled_tracing_changes_nothing;
    Alcotest.test_case "trace analysis" `Quick test_analyze;
    Alcotest.test_case "replay converges (2 scenarios x 2 modes)" `Quick
      test_replay_convergence;
    Alcotest.test_case "replay through a file" `Quick test_replay_through_file;
    Alcotest.test_case "replay detects tampering" `Quick
      test_replay_detects_tampering;
    Alcotest.test_case "replay rejects unusable traces" `Quick
      test_replay_rejects_unusable_traces;
  ]
