(* Tests for the lib/chaos socket fault proxy, hosting client, proxy,
   and daemon in one thread (both are select loops driven by [step]).
   Each fault knob is driven to probability 1 in isolation, then a mild
   default-plan run with a mid-script daemon restart checks the whole
   recovery story end-to-end at unit-test scale (bin/chaos_smoke.ml does
   the same across real processes and SIGKILL). *)

open Adpm_serve
module Chaos = Adpm_chaos.Chaos
module Interactive = Adpm_teamsim.Interactive

let temp_dir () =
  let d = Filename.temp_file "adpm-chaos" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  let rec rm p =
    if (try Sys.is_directory p with Sys_error _ -> false) then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      try Unix.rmdir p with Unix.Unix_error _ -> ()
    end
    else try Sys.remove p with Sys_error _ -> ()
  in
  rm dir

let script = [ "auto"; "step"; "auto"; "status" ]

let reference_outputs ~seed =
  let r =
    Interactive.create ~mode:Adpm_core.Dpm.Adpm ~seed
      Adpm_scenarios.Simple.scenario ~designer:"alice"
  in
  ( List.map
      (fun line ->
        match Interactive.execute r line with Ok s -> Some s | Error _ -> None)
      script,
    r )

(* Host a daemon (as a mutable ref so tests can restart it) and a proxy
   in front of it; hand the test a pump and the proxy's listen addr. *)
let with_stack ?(journal = false) ~plan ~seed f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sock = Filename.concat dir "d.sock" in
      let cfg =
        {
          (Daemon.default_config
             ~addr:(Daemon.Unix_path sock)
             ~scenarios:[ Adpm_scenarios.Simple.scenario ])
          with
          Daemon.dc_checkpoint_dir = dir;
          dc_journal_dir =
            (if journal then Some (Filename.concat dir "journal") else None);
        }
      in
      let d = ref (Daemon.create cfg) in
      let proxy =
        Chaos.create ~seed ~plan
          ~listen:(Unix.ADDR_UNIX (Filename.concat dir "proxy.sock"))
          ~upstream:(Unix.ADDR_UNIX sock)
      in
      let pump () =
        ignore (Daemon.step ~timeout:0. !d : bool);
        Chaos.step ~timeout:0. proxy
      in
      Fun.protect
        ~finally:(fun () ->
          Chaos.stop proxy;
          Daemon.stop !d)
        (fun () ->
          f
            ~addr:(Unix.ADDR_UNIX (Filename.concat dir "proxy.sock"))
            ~pump ~proxy
            ~restart:(fun () ->
              Daemon.stop !d;
              d := Daemon.create cfg)))

let run_script ~pump c ~seed =
  let rpc req = Client.rpc ~timeout:30. ~pump c req in
  let opened =
    rpc
      (Wire.Open
         { scenario = "simple"; mode = Adpm_core.Dpm.Adpm; seed; designer = "alice" })
  in
  let sid = Option.get (Client.body_str opened "session") in
  ( sid,
    List.map
      (fun line -> Client.body_str (rpc (Wire.Exec { session = sid; line })) "output")
      script )

(* With every probability at 0 the proxy must be invisible: same outputs
   as a direct run, and the stats stay clean. *)
let test_passthrough () =
  with_stack ~plan:Chaos.none ~seed:7 (fun ~addr ~pump ~proxy ~restart:_ ->
      let c = Client.connect_persistent ~client:"t-pass" ~seed:1 addr in
      let _sid, got = run_script ~pump c ~seed:5 in
      let expected, _ = reference_outputs ~seed:5 in
      Alcotest.(check (list (option string)))
        "passthrough outputs identical" expected got;
      let st = Chaos.stats proxy in
      Alcotest.(check int) "no cuts" 0 st.Chaos.st_cuts;
      Alcotest.(check int) "no dribbles" 0 st.Chaos.st_dribbles;
      Alcotest.(check int) "no delays" 0 st.Chaos.st_delays;
      Alcotest.(check int) "no splits" 0 st.Chaos.st_splits;
      Alcotest.(check bool) "at least one connection" true
        (st.Chaos.st_conns >= 1);
      Client.close c)

(* cut = 1: every chunk kills its link. A plain (non-reconnecting)
   client must see this as a clean connection loss, never a hang. *)
let test_cut_everything () =
  with_stack
    ~plan:{ Chaos.none with Chaos.cp_cut = 1.0 }
    ~seed:11
    (fun ~addr ~pump ~proxy:_ ~restart:_ ->
      let c = Client.connect addr in
      pump ();
      let died =
        match Client.rpc ~timeout:10. ~pump c Wire.Hello with
        | _ -> false
        | exception (Client.Closed | Client.Timeout) -> true
      in
      Alcotest.(check bool) "plain client sees the cut as Closed" true died;
      Client.close c)

(* dribble = 1: every chunk arrives a byte at a time. Slower, but a
   persistent client must still complete the whole script correctly —
   byte-at-a-time delivery is just framing's worst case. *)
let test_dribble_everything () =
  with_stack
    ~plan:{ Chaos.none with Chaos.cp_dribble = 1.0; cp_delay_max = 0.005 }
    ~seed:13
    (fun ~addr ~pump ~proxy ~restart:_ ->
      let c = Client.connect_persistent ~client:"t-drib" ~seed:2 addr in
      let _sid, got = run_script ~pump c ~seed:6 in
      let expected, _ = reference_outputs ~seed:6 in
      Alcotest.(check (list (option string)))
        "dribbled outputs identical" expected got;
      Alcotest.(check bool) "dribbles actually fired" true
        ((Chaos.stats proxy).Chaos.st_dribbles > 0);
      Client.close c)

(* split = 1: every chunk is delivered as two back-to-back writes —
   every frame boundary lands mid-write somewhere. *)
let test_split_everything () =
  with_stack
    ~plan:{ Chaos.none with Chaos.cp_split = 1.0 }
    ~seed:17
    (fun ~addr ~pump ~proxy ~restart:_ ->
      let c = Client.connect_persistent ~client:"t-split" ~seed:3 addr in
      let _sid, got = run_script ~pump c ~seed:9 in
      let expected, _ = reference_outputs ~seed:9 in
      Alcotest.(check (list (option string)))
        "split outputs identical" expected got;
      Alcotest.(check bool) "splits actually fired" true
        ((Chaos.stats proxy).Chaos.st_splits > 0);
      Client.close c)

(* The full story at unit scale: two reconnecting clients through the
   default mild-chaos plan against a journaled daemon that is torn down
   and rebuilt mid-script. Both command logs must be byte-identical to
   undisturbed runs and both final fingerprints exact. *)
let test_chaos_restart_end_to_end () =
  with_stack ~journal:true ~plan:Chaos.default ~seed:23
    (fun ~addr ~pump ~proxy:_ ~restart ->
      let seeds = [| 4; 8 |] in
      let refs =
        Array.map
          (fun seed ->
            Interactive.create ~mode:Adpm_core.Dpm.Adpm ~seed
              Adpm_scenarios.Simple.scenario ~designer:"alice")
          seeds
      in
      let expected =
        Array.map
          (fun r ->
            List.map
              (fun line ->
                match Interactive.execute r line with
                | Ok s -> Some s
                | Error _ -> None)
              script)
          refs
      in
      let clients =
        Array.mapi
          (fun i _ ->
            Client.connect_persistent ~retries:12
              ~client:(Printf.sprintf "t-e2e-%d" i)
              ~seed:(100 + i) addr)
          seeds
      in
      let rpc c req = Client.rpc ~timeout:30. ~pump c req in
      let sids =
        Array.mapi
          (fun i c ->
            Option.get
              (Client.body_str
                 (rpc c
                    (Wire.Open
                       {
                         scenario = "simple";
                         mode = Adpm_core.Dpm.Adpm;
                         seed = seeds.(i);
                         designer = "alice";
                       }))
                 "session"))
          clients
      in
      let got = Array.make (Array.length seeds) [] in
      List.iteri
        (fun round line ->
          if round = 2 then restart ();
          Array.iteri
            (fun i c ->
              let resp = rpc c (Wire.Exec { session = sids.(i); line }) in
              got.(i) <- Client.body_str resp "output" :: got.(i))
            clients)
        script;
      Array.iteri
        (fun i c ->
          Alcotest.(check (list (option string)))
            (Printf.sprintf "client %d log byte-identical across restart" i)
            expected.(i)
            (List.rev got.(i));
          Alcotest.(check (option string))
            (Printf.sprintf "client %d fingerprint exact" i)
            (Some (Session.fingerprint_of_interactive refs.(i)))
            (Client.body_str (rpc c (Wire.Status { session = sids.(i) })) "fingerprint");
          Client.close c)
        clients)

let suite =
  [
    ("proxy passthrough is invisible", `Quick, test_passthrough);
    ("all-cuts surfaces as connection loss", `Quick, test_cut_everything);
    ("all-dribbles still completes", `Quick, test_dribble_everything);
    ("all-splits still completes", `Quick, test_split_everything);
    ( "default chaos + restart, byte-identical",
      `Quick,
      test_chaos_restart_end_to_end );
  ]
