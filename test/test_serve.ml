(* Tests for the teamsimd stack: the JSONL wire layer (framing, request
   codec) and the daemon's request dispatcher, driven in-process through
   [Daemon.handle] / [handle_line] — no live socket needed, so these run
   everywhere the unit suite runs. The socket path itself is covered by
   the daemon-smoke alias (bin/daemon_smoke.ml). *)

open Adpm_core
open Adpm_teamsim
open Adpm_serve
module Json = Adpm_trace.Json

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 Wire.Reader framing} *)

let drain reader =
  let rec go acc =
    match Wire.Reader.next reader with
    | `Frame f -> go (f :: acc)
    | `Pending | `Oversize -> List.rev acc
  in
  go []

let test_reader_framing () =
  let r = Wire.Reader.create () in
  Wire.Reader.feed r "{\"op\":\"he";
  Alcotest.(check (list string)) "partial frame pends" [] (drain r);
  Wire.Reader.feed r "llo\"}\n{\"a\":1}\r\n{\"b\":";
  Alcotest.(check (list string))
    "two complete frames, CR stripped"
    [ "{\"op\":\"hello\"}"; "{\"a\":1}" ]
    (drain r);
  Wire.Reader.feed r "2}\n";
  Alcotest.(check (list string)) "tail completes" [ "{\"b\":2}" ] (drain r);
  (* empty lines are skipped, not delivered as empty frames *)
  Wire.Reader.feed r "\n\n{\"c\":3}\n";
  Alcotest.(check (list string)) "blank lines skipped" [ "{\"c\":3}" ] (drain r)

let test_reader_oversize_sticky () =
  let r = Wire.Reader.create ~max_frame:8 () in
  Wire.Reader.feed r "{\"ok\":1}\n";
  Alcotest.(check (list string)) "frame at bound" [ "{\"ok\":1}" ] (drain r);
  Wire.Reader.feed r (String.make 64 'x');
  Alcotest.(check bool) "oversize detected" true
    (match Wire.Reader.next r with `Oversize -> true | _ -> false);
  (* sticky: even a newline plus a small frame cannot revive the reader *)
  Wire.Reader.feed r "\n{\"a\":1}\n";
  Alcotest.(check bool) "oversize is sticky" true
    (match Wire.Reader.next r with `Oversize -> true | _ -> false)

(* {2 Request codec} *)

let roundtrip req =
  match Wire.request_of_json (Wire.request_to_json req) with
  | Ok r -> r = req
  | Error _ -> false

let test_request_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.(check bool) "request survives encode/decode" true
        (roundtrip req))
    [
      Wire.Hello;
      Wire.Open
        { scenario = "simple"; mode = Dpm.Adpm; seed = 7; designer = "alice" };
      Wire.Open
        {
          scenario = "lna";
          mode = Dpm.Conventional;
          seed = 1;
          designer = "circuit";
        };
      Wire.Exec { session = "s1"; line = "set x 1" };
      Wire.Status { session = "s1" };
      Wire.Checkpoint { session = "s1"; path = Some "/tmp/a.jsonl" };
      Wire.Checkpoint { session = "s1"; path = None };
      Wire.Resume { path = "/tmp/a.jsonl" };
      Wire.Close { session = "s1" };
      Wire.Shutdown;
    ]

let test_request_bad_shapes () =
  let bad j =
    match Wire.request_of_json j with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "non-object rejected" true (bad (Json.Str "hello"));
  Alcotest.(check bool) "missing op rejected" true (bad (Json.Obj []));
  Alcotest.(check bool) "unknown op rejected" true
    (bad (Json.Obj [ ("op", Json.Str "frobnicate") ]));
  Alcotest.(check bool) "open without scenario rejected" true
    (bad (Json.Obj [ ("op", Json.Str "open") ]));
  Alcotest.(check bool) "exec without line rejected" true
    (bad (Json.Obj [ ("op", Json.Str "exec"); ("session", Json.Str "s1") ]));
  Alcotest.(check bool) "bad mode rejected" true
    (bad
       (Json.Obj
          [
            ("op", Json.Str "open");
            ("scenario", Json.Str "simple");
            ("designer", Json.Str "alice");
            ("mode", Json.Str "quantum");
          ]))

(* {2 Dispatcher protocol tests (in-process daemon)} *)

let temp_path suffix =
  let f = Filename.temp_file "adpm-serve" suffix in
  Sys.remove f;
  f

let with_daemon ?(max_sessions = 256) f =
  let sock = temp_path ".sock" in
  let cfg =
    {
      (Daemon.default_config ~addr:(Daemon.Unix_path sock)
         ~scenarios:[ Adpm_scenarios.Simple.scenario ])
      with
      Daemon.dc_max_sessions = max_sessions;
    }
  in
  let d = Daemon.create cfg in
  Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f d)

let field name frame = Json.member name frame

let str_field name frame =
  match Option.bind (field name frame) Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S" name

let is_ok frame =
  match Option.bind (field "ok" frame) Json.to_bool with
  | Some b -> b
  | None -> Alcotest.fail "response lacks the ok field"

let expect_ok frame =
  if not (is_ok frame) then
    Alcotest.failf "expected ok frame, got error %s/%s" (str_field "code" frame)
      (str_field "error" frame);
  frame

let expect_err code frame =
  Alcotest.(check bool) "frame is an error" false (is_ok frame);
  Alcotest.(check string) "error code" code (str_field "code" frame);
  frame

let obj fields = Json.Obj fields
let op name rest = obj (("op", Json.Str name) :: rest)

let open_simple ?(designer = "alice") ?(seed = 3) d =
  let frame =
    expect_ok
      (Daemon.handle d
         (op "open"
            [
              ("scenario", Json.Str "simple");
              ("designer", Json.Str designer);
              ("mode", Json.Str "adpm");
              ("seed", Json.Num (float_of_int seed));
            ]))
  in
  str_field "session" frame

let test_hello_and_open () =
  with_daemon (fun d ->
      let hello = expect_ok (Daemon.handle d (op "hello" [])) in
      Alcotest.(check string) "server name" "teamsimd"
        (str_field "server" hello);
      Alcotest.(check bool) "scenario listed" true
        (match Option.bind (field "scenarios" hello) Json.to_list with
        | Some l -> List.exists (fun s -> Json.to_str s = Some "simple") l
        | None -> false);
      let sid = open_simple d in
      Alcotest.(check int) "one session" 1 (Daemon.session_count d);
      let status =
        expect_ok (Daemon.handle d (op "status" [ ("session", Json.Str sid) ]))
      in
      Alcotest.(check string) "status echoes designer" "alice"
        (str_field "designer" status);
      ignore
        (expect_ok (Daemon.handle d (op "close" [ ("session", Json.Str sid) ])));
      Alcotest.(check int) "closed" 0 (Daemon.session_count d))

let test_error_codes () =
  with_daemon ~max_sessions:1 (fun d ->
      ignore
        (expect_err "parse" (Daemon.handle_line d "this is not json"));
      ignore (expect_err "bad_request" (Daemon.handle_line d "\"a string\""));
      ignore
        (expect_err "bad_request"
           (Daemon.handle d (op "frobnicate" [])));
      ignore
        (expect_err "unknown_scenario"
           (Daemon.handle d
              (op "open"
                 [
                   ("scenario", Json.Str "nonesuch");
                   ("designer", Json.Str "alice");
                 ])));
      ignore
        (expect_err "bad_request"
           (Daemon.handle d
              (op "open"
                 [
                   ("scenario", Json.Str "simple");
                   ("designer", Json.Str "nobody");
                 ])));
      ignore
        (expect_err "unknown_session"
           (Daemon.handle d (op "exec"
              [ ("session", Json.Str "s99"); ("line", Json.Str "status") ])));
      let sid = open_simple d in
      ignore
        (expect_err "session_limit"
           (Daemon.handle d
              (op "open"
                 [
                   ("scenario", Json.Str "simple");
                   ("designer", Json.Str "bob");
                 ])));
      (* a command the session rejects is code=command, session intact *)
      ignore
        (expect_err "command"
           (Daemon.handle d
              (op "exec"
                 [ ("session", Json.Str sid); ("line", Json.Str "frobnicate") ])));
      Alcotest.(check int) "session survives command error" 1
        (Daemon.session_count d))

let test_id_echo () =
  with_daemon (fun d ->
      let frame =
        Daemon.handle d (obj [ ("op", Json.Str "hello"); ("id", Json.Num 42.) ])
      in
      Alcotest.(check bool) "numeric id echoed" true
        (field "id" frame = Some (Json.Num 42.));
      let err =
        Daemon.handle_line d "{\"op\":\"nope\",\"id\":\"req-7\"}"
      in
      Alcotest.(check bool) "id echoed on errors too" true
        (field "id" err = Some (Json.Str "req-7")))

(* The daemon must produce byte-identical command outputs to a local
   Interactive session with the same scenario/mode/seed/designer — the
   acceptance bar for "scripted socket session matches the CLI loop". *)
let test_cli_equivalence () =
  let script =
    [ "status"; "auto"; "auto"; "step"; "suggest"; "auto"; "props"; "step" ]
  in
  with_daemon (fun d ->
      let sid = open_simple d ~designer:"alice" ~seed:5 in
      let local =
        Interactive.create ~mode:Dpm.Adpm ~seed:5
          Adpm_scenarios.Simple.scenario ~designer:"alice"
      in
      List.iter
        (fun line ->
          let remote =
            str_field "output"
              (expect_ok
                 (Daemon.handle d
                    (op "exec"
                       [ ("session", Json.Str sid); ("line", Json.Str line) ])))
          in
          let expected =
            match Interactive.execute local line with
            | Ok out -> out
            | Error e -> Alcotest.failf "local session rejected %S: %s" line e
          in
          Alcotest.(check string)
            (Printf.sprintf "output of %S matches CLI" line)
            expected remote)
        script)

(* {2 Checkpoint / resume} *)

let exec_ok d sid line =
  str_field "output"
    (expect_ok
       (Daemon.handle d
          (op "exec" [ ("session", Json.Str sid); ("line", Json.Str line) ])))

let test_checkpoint_resume () =
  let ckpt = temp_path ".jsonl" in
  let script = [ "auto"; "auto"; "step"; "auto" ] in
  let fp_before, commands_after =
    with_daemon (fun d ->
        let sid = open_simple d ~designer:"alice" ~seed:9 in
        List.iter (fun l -> ignore (exec_ok d sid l)) script;
        let frame =
          expect_ok
            (Daemon.handle d
               (op "checkpoint"
                  [ ("session", Json.Str sid); ("path", Json.Str ckpt) ]))
        in
        (str_field "fingerprint" frame, [ "step"; "auto" ]))
  in
  (* the first daemon is gone (stopped); a fresh one resumes from disk *)
  with_daemon (fun d ->
      let frame =
        expect_ok (Daemon.handle d (op "resume" [ ("path", Json.Str ckpt) ]))
      in
      Alcotest.(check string) "fingerprint preserved across restart" fp_before
        (str_field "fingerprint" frame);
      let sid = str_field "session" frame in
      (* the resumed session must behave exactly like an uninterrupted
         one: same designer RNG stream, same outputs *)
      let local =
        Interactive.create ~mode:Dpm.Adpm ~seed:9
          Adpm_scenarios.Simple.scenario ~designer:"alice"
      in
      List.iter
        (fun l -> ignore (Result.get_ok (Interactive.execute local l)))
        script;
      List.iter
        (fun l ->
          let expected = Result.get_ok (Interactive.execute local l) in
          Alcotest.(check string)
            (Printf.sprintf "post-resume %S matches uninterrupted run" l)
            expected (exec_ok d sid l))
        commands_after);
  Sys.remove ckpt

let test_resume_errors () =
  with_daemon (fun d ->
      ignore
        (expect_err "io"
           (Daemon.handle d
              (op "resume" [ ("path", Json.Str "/nonexistent/ckpt.jsonl") ])));
      let bad = temp_path ".jsonl" in
      Out_channel.with_open_text bad (fun oc ->
          output_string oc "{\"not\":\"a checkpoint\"}\n");
      ignore
        (expect_err "bad_checkpoint"
           (Daemon.handle d (op "resume" [ ("path", Json.Str bad) ])));
      Sys.remove bad;
      (* a real checkpoint with a tampered fingerprint must be refused *)
      let ckpt = temp_path ".jsonl" in
      let sid = open_simple d in
      ignore (exec_ok d sid "auto");
      ignore
        (expect_ok
           (Daemon.handle d
              (op "checkpoint"
                 [ ("session", Json.Str sid); ("path", Json.Str ckpt) ])));
      let contents = In_channel.with_open_text ckpt In_channel.input_all in
      let header, rest =
        match String.index_opt contents '\n' with
        | Some i ->
          ( String.sub contents 0 i,
            String.sub contents i (String.length contents - i) )
        | None -> Alcotest.fail "checkpoint has no header line"
      in
      let tampered_header =
        match Json.parse header with
        | Ok (Json.Obj fields) ->
          Json.to_string
            (Json.Obj
               (List.map
                  (function
                    | "fingerprint", _ ->
                      ("fingerprint", Json.Str "ops=999 tampered")
                    | kv -> kv)
                  fields))
        | _ -> Alcotest.fail "checkpoint header does not parse"
      in
      Out_channel.with_open_text ckpt (fun oc ->
          output_string oc (tampered_header ^ rest));
      let frame = Daemon.handle d (op "resume" [ ("path", Json.Str ckpt) ]) in
      Alcotest.(check bool) "tampered checkpoint refused" true
        (match Option.bind (field "code" frame) Json.to_str with
        | Some ("resume_mismatch" | "bad_checkpoint") -> true
        | _ -> false);
      Sys.remove ckpt)

(* {2 Registry-backed resolution} *)

(* With the full registry injected (as the CLI does), a malformed gen:
   spec or an unreadable file: path must come back as a command-level
   [unknown_scenario] error frame — never a [session_failed] and never a
   torn-down daemon. *)
let test_registry_resolution_errors () =
  let sock = temp_path ".sock" in
  let cfg =
    {
      (Daemon.default_config ~addr:(Daemon.Unix_path sock)
         ~scenarios:Adpm_scenarios.Registry.builtin)
      with
      Daemon.dc_resolve = Adpm_scenarios.Registry.resolve_result;
    }
  in
  let d = Daemon.create cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let open_scenario name =
        Daemon.handle d
          (op "open"
             [ ("scenario", Json.Str name); ("designer", Json.Str "leader") ])
      in
      List.iter
        (fun (name, mention) ->
          let frame = expect_err "unknown_scenario" (open_scenario name) in
          Alcotest.(check bool)
            (Printf.sprintf "%S error mentions %S" name mention)
            true
            (contains (str_field "error" frame) mention);
          Alcotest.(check int)
            (Printf.sprintf "%S leaves no session behind" name)
            0 (Daemon.session_count d))
        [
          ("nonesuch", "unknown scenario");
          ("gen:frobs=1", "malformed gen: spec");
          ("file:/nonexistent/no.dddl", "cannot read scenario file");
        ];
      (* and a well-formed gen: reference opens a live session *)
      let frame = expect_ok (open_scenario "gen:n=3,k=1,seed=4") in
      let sid = str_field "session" frame in
      Alcotest.(check bool) "gen: session executes" true
        (contains (exec_ok d sid "status") "PROBLEMS"))

(* {2 Session isolation} *)

(* A session whose engine throws something other than the
   Invalid_argument family must be torn down with a [session_failed]
   frame while the daemon keeps serving everyone else. Stock scenarios
   cannot produce such a throw organically, so we wedge the session's
   trace sink through the test seam. *)
let test_session_failed_teardown () =
  with_daemon (fun d ->
      let victim = open_simple d ~designer:"alice" in
      let bystander = open_simple d ~designer:"bob" in
      (match Daemon.find_session d victim with
      | None -> Alcotest.fail "victim session not found"
      | Some s ->
        let wedged =
          Adpm_trace.Tracer.create
            {
              Adpm_trace.Sink.write = (fun _ -> failwith "sink wedged");
              close = (fun () -> ());
            }
        in
        Dpm.set_tracer (Interactive.dpm (Session.interactive s)) wedged);
      let frame =
        Daemon.handle d
          (op "exec" [ ("session", Json.Str victim); ("line", Json.Str "auto") ])
      in
      ignore (expect_err "session_failed" frame);
      Alcotest.(check bool) "failure message surfaced" true
        (contains (str_field "error" frame) "sink wedged");
      Alcotest.(check int) "victim torn down, bystander alive" 1
        (Daemon.session_count d);
      (* the daemon still serves: the bystander keeps working *)
      Alcotest.(check bool) "bystander still executes" true
        (contains (exec_ok d bystander "auto") "executed"))

let test_many_sessions () =
  with_daemon ~max_sessions:96 (fun d ->
      let designers = [| "alice"; "bob"; "leader" |] in
      let sids =
        List.init 64 (fun i ->
            open_simple d ~designer:designers.(i mod 3) ~seed:(i + 1))
      in
      Alcotest.(check int) "64 concurrent sessions" 64 (Daemon.session_count d);
      List.iter (fun sid -> ignore (exec_ok d sid "auto")) sids;
      List.iter
        (fun sid ->
          ignore
            (expect_ok
               (Daemon.handle d (op "close" [ ("session", Json.Str sid) ]))))
        sids;
      Alcotest.(check int) "all closed" 0 (Daemon.session_count d))

(* {2 Write-ahead journal: WAL, recovery, compaction, locking} *)

let temp_dir () =
  let d = Filename.temp_file "adpm-serve" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  let rec rm p =
    if (try Sys.is_directory p with Sys_error _ -> false) then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      try Unix.rmdir p with Unix.Unix_error _ -> ()
    end
    else try Sys.remove p with Sys_error _ -> ()
  in
  rm dir

let journal_config ?(checkpoint_every = 0) ?(max_ops = 0) ~dir () =
  {
    (Daemon.default_config
       ~addr:(Daemon.Unix_path (Filename.concat dir "d.sock"))
       ~scenarios:[ Adpm_scenarios.Simple.scenario ])
    with
    Daemon.dc_checkpoint_dir = dir;
    dc_journal_dir = Some (Filename.concat dir "journal");
    dc_checkpoint_every = checkpoint_every;
    dc_max_ops = max_ops;
  }

let journal_path ~dir sid =
  Filename.concat (Filename.concat dir "journal") (sid ^ ".journal.jsonl")

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let status_fp d sid =
  str_field "fingerprint"
    (expect_ok (Daemon.handle d (op "status" [ ("session", Json.Str sid) ])))

(* Kill-free auto-resume: a second daemon pointed at the first one's
   journal dir (after [stop], which keeps journal files) must rebuild the
   session, match its fingerprint, and continue byte-identically to an
   uninterrupted run. *)
let test_journal_autoresume () =
  with_dir (fun dir ->
      let before = [ "auto"; "auto"; "step" ] and after = [ "auto"; "step" ] in
      let d1 = Daemon.create (journal_config ~dir ()) in
      let sid = open_simple d1 ~designer:"alice" ~seed:11 in
      List.iter (fun l -> ignore (exec_ok d1 sid l)) before;
      let fp = status_fp d1 sid in
      Daemon.stop d1;
      Alcotest.(check bool) "journal file survives stop" true
        (Sys.file_exists (journal_path ~dir sid));
      let d2 = Daemon.create (journal_config ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d2)
        (fun () ->
          Alcotest.(check (list (pair string int)))
            "session recovered with its command count"
            [ (sid, List.length before) ]
            (Daemon.recovered_sessions d2);
          Alcotest.(check string) "fingerprint preserved" fp (status_fp d2 sid);
          let local =
            Interactive.create ~mode:Dpm.Adpm ~seed:11
              Adpm_scenarios.Simple.scenario ~designer:"alice"
          in
          List.iter
            (fun l -> ignore (Result.get_ok (Interactive.execute local l)))
            before;
          List.iter
            (fun l ->
              Alcotest.(check string)
                (Printf.sprintf "post-recovery %S matches uninterrupted run" l)
                (Result.get_ok (Interactive.execute local l))
                (exec_ok d2 sid l))
            after;
          (* a fresh open after recovery must not collide with the
             recovered session's id *)
          let sid2 = open_simple d2 ~designer:"bob" in
          Alcotest.(check bool) "session ids stay monotone" true (sid2 <> sid);
          ignore
            (expect_ok
               (Daemon.handle d2 (op "close" [ ("session", Json.Str sid) ])));
          Alcotest.(check bool) "close deletes the journal" false
            (Sys.file_exists (journal_path ~dir sid))))

(* A torn final line (crash mid-append) is a command that never executed:
   recovery drops it and lands exactly on the state before it. *)
let test_journal_torn_tail () =
  with_dir (fun dir ->
      let d1 = Daemon.create (journal_config ~dir ()) in
      let sid = open_simple d1 ~seed:4 in
      ignore (exec_ok d1 sid "auto");
      ignore (exec_ok d1 sid "auto");
      let fp = status_fp d1 sid in
      Daemon.stop d1;
      let p = journal_path ~dir sid in
      let oc = open_out_gen [ Open_append ] 0o644 p in
      output_string oc "{\"cmd\":\"auto\",\"fp\":\"torn mid-wri";
      close_out oc;
      let d2 = Daemon.create (journal_config ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d2)
        (fun () ->
          Alcotest.(check (list (pair string int)))
            "torn tail dropped, both real commands replayed"
            [ (sid, 2) ]
            (Daemon.recovered_sessions d2);
          Alcotest.(check string) "state is the pre-tear state" fp
            (status_fp d2 sid)))

(* A corrupt header must never wedge startup: the journal is quarantined
   and the daemon comes up clean (and says so via warnings). *)
let test_journal_corrupt_header () =
  with_dir (fun dir ->
      let jdir = Filename.concat dir "journal" in
      Unix.mkdir jdir 0o755;
      let p = Filename.concat jdir "s1.journal.jsonl" in
      Out_channel.with_open_text p (fun oc ->
          output_string oc "this is not a json header\n");
      let d = Daemon.create (journal_config ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          Alcotest.(check int) "daemon starts with no sessions" 0
            (Daemon.session_count d);
          Alcotest.(check bool) "warning emitted" true (Daemon.warnings d <> []);
          Alcotest.(check bool) "journal quarantined" true
            (Sys.file_exists (p ^ ".corrupt"))))

(* An entry whose fingerprint diverges from the replayed state marks the
   end of the trustworthy tail: replay stops there, earlier state stands. *)
let test_journal_fingerprint_gate () =
  with_dir (fun dir ->
      let d1 = Daemon.create (journal_config ~dir ()) in
      let sid = open_simple d1 ~seed:6 in
      ignore (exec_ok d1 sid "auto");
      ignore (exec_ok d1 sid "auto");
      Daemon.stop d1;
      let p = journal_path ~dir sid in
      let lines =
        In_channel.with_open_text p In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      (* tamper the second entry's fp (header :: e1 :: e2) *)
      let tampered =
        List.mapi
          (fun i l ->
            if i = 2 then
              match Json.parse l with
              | Ok (Json.Obj fields) ->
                Json.to_string
                  (Json.Obj
                     (List.map
                        (function
                          | "fp", _ -> ("fp", Json.Str "ops=999 tampered")
                          | kv -> kv)
                        fields))
              | _ -> l
            else l)
          lines
      in
      Out_channel.with_open_text p (fun oc ->
          List.iter (fun l -> output_string oc (l ^ "\n")) tampered);
      let d2 = Daemon.create (journal_config ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d2)
        (fun () ->
          Alcotest.(check (list (pair string int)))
            "replay stops at the divergent entry"
            [ (sid, 1) ]
            (Daemon.recovered_sessions d2);
          Alcotest.(check bool) "divergence reported" true
            (List.exists (fun w -> contains w "diverges") (Daemon.warnings d2))))

(* Auto-compaction folds the tail into the header every N commands; the
   compacted journal still recovers fingerprint-exact. *)
let test_journal_compaction () =
  with_dir (fun dir ->
      let d1 = Daemon.create (journal_config ~checkpoint_every:2 ~dir ()) in
      let sid = open_simple d1 ~seed:8 in
      List.iter (fun l -> ignore (exec_ok d1 sid l)) [ "auto"; "auto"; "step"; "auto" ] ;
      let fp = status_fp d1 sid in
      Daemon.stop d1;
      let lines =
        In_channel.with_open_text (journal_path ~dir sid) In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "4th command compacted the tail away" 1
        (List.length lines);
      let d2 = Daemon.create (journal_config ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d2)
        (fun () ->
          Alcotest.(check (list (pair string int)))
            "compacted journal recovers (4 commands in the header)"
            [ (sid, 4) ]
            (Daemon.recovered_sessions d2);
          Alcotest.(check string) "fingerprint preserved" fp (status_fp d2 sid)))

(* Two daemons must never share a journal dir: the second refuses at
   create; once the first stops, the dir is free again. A stale lock left
   by a SIGKILLed daemon (dead pid) is broken, not honored. *)
let test_journal_lockfile () =
  with_dir (fun dir ->
      let cfg2 =
        {
          (journal_config ~dir ()) with
          Daemon.dc_addr = Daemon.Unix_path (Filename.concat dir "d2.sock");
        }
      in
      let d1 = Daemon.create (journal_config ~dir ()) in
      (match Daemon.create cfg2 with
      | _ -> Alcotest.fail "second daemon on a held journal dir must refuse"
      | exception Failure msg ->
        Alcotest.(check bool) "refusal names the lock" true
          (contains msg "locked"));
      Daemon.stop d1;
      let d2 = Daemon.create cfg2 in
      Daemon.stop d2;
      (* stale lock: a dead pid in the lockfile must be broken silently *)
      let lock = Filename.concat (Filename.concat dir "journal") "teamsimd.lock" in
      Out_channel.with_open_text lock (fun oc -> output_string oc "999999999\n");
      let d3 = Daemon.create cfg2 in
      Daemon.stop d3)

(* dc_journal_dir pointing at something unusable must refuse at create
   (a daemon that cannot journal must not pretend it can recover). *)
let test_journal_dir_unusable () =
  let file = Filename.temp_file "adpm-serve" ".notadir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let cfg =
        {
          (Daemon.default_config
             ~addr:(Daemon.Unix_path (temp_path ".sock"))
             ~scenarios:[ Adpm_scenarios.Simple.scenario ])
          with
          Daemon.dc_journal_dir = Some file;
        }
      in
      match Daemon.create cfg with
      | d ->
        Daemon.stop d;
        Alcotest.fail "journal dir = regular file must refuse"
      | exception Failure msg ->
        Alcotest.(check bool) "error names the journal dir" true
          (contains msg "journal"))

(* When journaling breaks after startup (dir vanishes out from under the
   daemon), an [open] is refused with [io] rather than running a session
   the daemon cannot recover. *)
let test_journal_write_failure_refuses_open () =
  with_dir (fun dir ->
      let d = Daemon.create (journal_config ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          let jdir = Filename.concat dir "journal" in
          rm_rf jdir;
          Out_channel.with_open_text jdir (fun oc -> output_string oc "x");
          let frame =
            Daemon.handle d
              (op "open"
                 [
                   ("scenario", Json.Str "simple");
                   ("designer", Json.Str "alice");
                 ])
          in
          ignore (expect_err "io" frame);
          Alcotest.(check int) "no half-journaled session left" 0
            (Daemon.session_count d)))

(* Checkpoint io edge cases: unwritable target path, and a full device
   (ENOSPC via /dev/full, when the host provides it). Both must come back
   as [io] error frames with the session alive. *)
let test_checkpoint_io_errors () =
  with_daemon (fun d ->
      let sid = open_simple d in
      ignore (exec_ok d sid "auto");
      let try_path p =
        ignore
          (expect_err "io"
             (Daemon.handle d
                (op "checkpoint"
                   [ ("session", Json.Str sid); ("path", Json.Str p) ])));
        Alcotest.(check int) "session survives the io error" 1
          (Daemon.session_count d)
      in
      try_path "/nonexistent-dir-adpm/ck.jsonl";
      if Sys.file_exists "/dev/full" then try_path "/dev/full")

(* {2 Idempotent requests: the (client, id) reply cache} *)

let with_id ?(client = "c1") idv fields frame_op =
  op frame_op (("id", Json.Str idv) :: ("client", Json.Str client) :: fields)

let command_count d sid =
  match Daemon.find_session d sid with
  | Some s -> Session.command_count s
  | None -> Alcotest.failf "session %s vanished" sid

let test_duplicate_id_answered_from_cache () =
  with_daemon (fun d ->
      let sid = open_simple d in
      let exec_frame =
        with_id "req-1"
          [ ("session", Json.Str sid); ("line", Json.Str "auto") ]
          "exec"
      in
      let first = Daemon.handle d exec_frame in
      ignore (expect_ok first);
      Alcotest.(check int) "executed once" 1 (command_count d sid);
      let second = Daemon.handle d exec_frame in
      Alcotest.(check string) "duplicate answered byte-identically"
        (Json.to_string first) (Json.to_string second);
      Alcotest.(check int) "duplicate did not re-execute" 1
        (command_count d sid);
      (* same id from another client is a different logical request *)
      let other =
        Daemon.handle d
          (with_id ~client:"c2" "req-1"
             [ ("session", Json.Str sid); ("line", Json.Str "auto") ]
             "exec")
      in
      ignore (expect_ok other);
      Alcotest.(check int) "distinct client executes" 2 (command_count d sid))

(* The cache is rebuilt from the journal: a resend of a pre-crash request
   is answered without double-execution even across a restart. *)
let test_reply_cache_survives_restart () =
  with_dir (fun dir ->
      let open_frame =
        with_id "open-1"
          [
            ("scenario", Json.Str "simple");
            ("designer", Json.Str "alice");
            ("mode", Json.Str "adpm");
            ("seed", Json.Num 3.);
          ]
          "open"
      in
      let d1 = Daemon.create (journal_config ~dir ()) in
      let opened = expect_ok (Daemon.handle d1 open_frame) in
      let sid = str_field "session" opened in
      let exec_frame =
        with_id "exec-1"
          [ ("session", Json.Str sid); ("line", Json.Str "auto") ]
          "exec"
      in
      let first = Daemon.handle d1 exec_frame in
      ignore (expect_ok first);
      Daemon.stop d1;
      let d2 = Daemon.create (journal_config ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d2)
        (fun () ->
          Alcotest.(check int) "replayed once" 1 (command_count d2 sid);
          Alcotest.(check string)
            "pre-crash exec resend answered byte-identically from the \
             rebuilt cache"
            (Json.to_string first)
            (Json.to_string (Daemon.handle d2 exec_frame));
          Alcotest.(check int) "resend did not re-execute" 1
            (command_count d2 sid);
          (* the open that created the session is cached too *)
          Alcotest.(check string) "pre-crash open resend answered"
            (Json.to_string opened)
            (Json.to_string (Daemon.handle d2 open_frame));
          Alcotest.(check int) "open resend made no second session" 1
            (Daemon.session_count d2)))

(* {2 Overload protection} *)

let test_op_budget_overloaded () =
  with_dir (fun dir ->
      let d = Daemon.create (journal_config ~max_ops:2 ~dir ()) in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          let sid = open_simple d in
          ignore (exec_ok d sid "auto");
          ignore (exec_ok d sid "auto");
          let frame =
            expect_err "overloaded"
              (Daemon.handle d
                 (op "exec"
                    [ ("session", Json.Str sid); ("line", Json.Str "auto") ]))
          in
          Alcotest.(check bool) "error names the budget" true
            (contains (str_field "error" frame) "budget");
          Alcotest.(check int) "budget refusal executes nothing" 2
            (command_count d sid);
          (* status still served: overload refuses work, not the session *)
          ignore (status_fp d sid)))

(* Admission control over a live socket: past dc_max_conns the daemon
   answers one no-id [overloaded] frame and closes — never accepts work
   it cannot serve. *)
let test_conn_limit_overloaded () =
  let sock = temp_path ".sock" in
  let cfg =
    {
      (Daemon.default_config ~addr:(Daemon.Unix_path sock)
         ~scenarios:[ Adpm_scenarios.Simple.scenario ])
      with
      Daemon.dc_max_conns = 1;
    }
  in
  let d = Daemon.create cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let pump () = ignore (Daemon.step ~timeout:0. d : bool) in
      let c1 = Client.connect (Unix.ADDR_UNIX sock) in
      pump ();
      let hello = Client.rpc ~timeout:10. ~pump c1 Wire.Hello in
      Alcotest.(check bool) "first connection served" true hello.Wire.r_ok;
      let c2 = Client.connect (Unix.ADDR_UNIX sock) in
      let refused = Client.rpc ~timeout:10. ~pump c2 Wire.Hello in
      Alcotest.(check bool) "second connection refused" false refused.Wire.r_ok;
      Alcotest.(check (option string)) "refusal code is overloaded"
        (Some "overloaded")
        (Option.bind (Json.member "code" refused.Wire.r_body) Json.to_str);
      Client.close c2;
      (* the refused connection freed its slot only after close; the
         first client keeps working throughout *)
      let again = Client.rpc ~timeout:10. ~pump c1 Wire.Hello in
      Alcotest.(check bool) "first connection unaffected" true again.Wire.r_ok;
      Client.close c1)

(* Slow-client defense: a peer that stops reading while responses pile up
   past dc_max_write_buf is disconnected; the daemon keeps serving. *)
let test_slow_client_disconnected () =
  let sock = temp_path ".sock" in
  let cfg =
    {
      (Daemon.default_config ~addr:(Daemon.Unix_path sock)
         ~scenarios:[ Adpm_scenarios.Simple.scenario ])
      with
      Daemon.dc_max_write_buf = 1024;
      dc_sndbuf = Some 4096;
    }
  in
  let d = Daemon.create cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let pump () = ignore (Daemon.step ~timeout:0. d : bool) in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      (* flood requests without ever reading a response *)
      let req = Json.to_string (Wire.request_to_json Wire.Hello) ^ "\n" in
      (try
         for _ = 1 to 2000 do
           ignore (Unix.write_substring fd req 0 (String.length req));
           pump ()
         done
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      for _ = 1 to 50 do
        pump ()
      done;
      (* the daemon must have hung up on us: draining the socket ends in
         EOF, not an endless stream *)
      let buf = Bytes.create 65536 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> true
        | _ ->
          pump ();
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
      in
      Alcotest.(check bool) "slow client disconnected" true (drain ());
      Unix.close fd;
      (* a well-behaved client is still served *)
      let c = Client.connect (Unix.ADDR_UNIX sock) in
      pump ();
      let hello = Client.rpc ~timeout:10. ~pump c Wire.Hello in
      Alcotest.(check bool) "daemon still serves after the disconnect" true
        hello.Wire.r_ok;
      Client.close c)

(* {2 Signal robustness (EINTR storm)} *)

(* A SIGALRM storm (every 2 ms) while a scripted session runs over the
   socket: every select/read/write on both sides keeps getting
   interrupted, and nothing may fail or hang. *)
let test_eintr_storm () =
  let sock = temp_path ".sock" in
  let cfg =
    Daemon.default_config ~addr:(Daemon.Unix_path sock)
      ~scenarios:[ Adpm_scenarios.Simple.scenario ]
  in
  let d = Daemon.create cfg in
  let old_handler =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ()))
  in
  let stop_storm () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.; it_value = 0. }
        : Unix.interval_timer_status);
    Sys.set_signal Sys.sigalrm old_handler
  in
  Fun.protect
    ~finally:(fun () ->
      stop_storm ();
      Daemon.stop d)
    (fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.002; it_value = 0.002 }
          : Unix.interval_timer_status);
      let pump () = ignore (Daemon.step ~timeout:0. d : bool) in
      let c = Client.connect (Unix.ADDR_UNIX sock) in
      pump ();
      let rpc req = Client.rpc ~timeout:30. ~pump c req in
      let resp =
        rpc
          (Wire.Open
             { scenario = "simple"; mode = Dpm.Adpm; seed = 2; designer = "bob" })
      in
      Alcotest.(check bool) "open under signal storm" true resp.Wire.r_ok;
      let sid = Option.get (Client.body_str resp "session") in
      for _ = 1 to 20 do
        let r = rpc (Wire.Exec { session = sid; line = "auto" }) in
        Alcotest.(check bool) "exec under signal storm" true r.Wire.r_ok
      done;
      Client.close c)

let suite =
  [
    ("reader framing", `Quick, test_reader_framing);
    ("reader oversize is sticky", `Quick, test_reader_oversize_sticky);
    ("request codec round-trip", `Quick, test_request_roundtrip);
    ("request codec rejects bad shapes", `Quick, test_request_bad_shapes);
    ("hello, open, status, close", `Quick, test_hello_and_open);
    ("protocol error codes", `Quick, test_error_codes);
    ("request ids echoed", `Quick, test_id_echo);
    ("daemon output equals CLI output", `Quick, test_cli_equivalence);
    ("checkpoint survives daemon restart", `Quick, test_checkpoint_resume);
    ("resume rejects bad artifacts", `Quick, test_resume_errors);
    ( "registry errors are command-level frames",
      `Quick,
      test_registry_resolution_errors );
    ("throwing session is isolated", `Quick, test_session_failed_teardown);
    ("64 sessions multiplex", `Quick, test_many_sessions);
    ("journal auto-resume", `Quick, test_journal_autoresume);
    ("journal drops a torn tail", `Quick, test_journal_torn_tail);
    ("corrupt journal header quarantined", `Quick, test_journal_corrupt_header);
    ("journal fingerprint gate", `Quick, test_journal_fingerprint_gate);
    ("journal auto-compaction", `Quick, test_journal_compaction);
    ("journal dir lockfile", `Quick, test_journal_lockfile);
    ("unusable journal dir refused", `Quick, test_journal_dir_unusable);
    ( "journal write failure refuses open",
      `Quick,
      test_journal_write_failure_refuses_open );
    ("checkpoint io errors", `Quick, test_checkpoint_io_errors);
    ( "duplicate request id answered from cache",
      `Quick,
      test_duplicate_id_answered_from_cache );
    ("reply cache survives restart", `Quick, test_reply_cache_survives_restart);
    ("op budget refused as overloaded", `Quick, test_op_budget_overloaded);
    ("connection limit refused as overloaded", `Quick, test_conn_limit_overloaded);
    ("slow client disconnected", `Quick, test_slow_client_disconnected);
    ("EINTR signal storm", `Quick, test_eintr_storm);
  ]

(* {2 Wire robustness under forks and signals}

   These fork, so they run in their own Alcotest suite registered
   {e before} the "domains" suite in test_main.ml (the PR 7 fork latch:
   forking after a Domain.spawn is unsound). *)

(* A frame far larger than the socket's send buffer, read by a
   deliberately slow peer: [Wire.send_line] must keep writing through
   short writes until every byte is out. *)
let test_short_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.setsockopt_int a Unix.SO_SNDBUF 4096;
  let payload = Json.Obj [ ("blob", Json.Str (String.make 300_000 'x')) ] in
  let expected = String.length (Json.to_string payload) + 1 in
  match Unix.fork () with
  | 0 ->
    (* child: dribble-read the frame and exit 0 iff the byte count is
       exactly one whole frame *)
    Unix.close a;
    let buf = Bytes.create 777 in
    let total = ref 0 in
    let rec go () =
      ignore (Unix.select [ b ] [] [] 5.);
      match Unix.read b buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
        total := !total + n;
        ignore (Unix.select [] [] [] 0.001);
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ();
    Unix._exit (if !total = expected then 0 else 1)
  | pid ->
    Unix.close b;
    Wire.send_line a payload;
    Unix.close a;
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "slow reader received the frame whole" true
      (status = Unix.WEXITED 0)

(* The same large write under a SIGALRM storm: write(2) keeps returning
   EINTR and [send_line] must retry, not drop bytes. *)
let test_write_eintr () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.setsockopt_int a Unix.SO_SNDBUF 4096;
  let payload = Json.Obj [ ("blob", Json.Str (String.make 200_000 'y')) ] in
  let expected = String.length (Json.to_string payload) + 1 in
  match Unix.fork () with
  | 0 ->
    Unix.close a;
    let buf = Bytes.create 4096 in
    let total = ref 0 in
    let rec go () =
      match Unix.read b buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
        total := !total + n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ();
    Unix._exit (if !total = expected then 0 else 1)
  | pid ->
    Unix.close b;
    let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.001; it_value = 0.001 }
        : Unix.interval_timer_status);
    Fun.protect
      ~finally:(fun () ->
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_interval = 0.; it_value = 0. }
            : Unix.interval_timer_status);
        Sys.set_signal Sys.sigalrm old)
      (fun () -> Wire.send_line a payload);
    Unix.close a;
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "frame complete despite EINTR storm" true
      (status = Unix.WEXITED 0)

(* Writing to a peer that already hung up must raise EPIPE as a normal
   Unix_error — never kill the process with SIGPIPE. *)
let test_epipe_not_sigpipe () =
  Wire.ignore_sigpipe ();
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  let payload = Json.Obj [ ("blob", Json.Str (String.make 100_000 'z')) ] in
  let got_epipe =
    match
      (* one frame may be swallowed by the socket buffer; keep writing *)
      for _ = 1 to 64 do
        Wire.send_line a payload
      done
    with
    | () -> false
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> true
  in
  Unix.close a;
  Alcotest.(check bool) "EPIPE raised, process alive" true got_epipe

let wire_suite =
  [
    ("send_line survives short writes", `Quick, test_short_writes);
    ("send_line survives EINTR", `Quick, test_write_eintr);
    ("EPIPE instead of SIGPIPE", `Quick, test_epipe_not_sigpipe);
  ]
