(* Tests for the teamsimd stack: the JSONL wire layer (framing, request
   codec) and the daemon's request dispatcher, driven in-process through
   [Daemon.handle] / [handle_line] — no live socket needed, so these run
   everywhere the unit suite runs. The socket path itself is covered by
   the daemon-smoke alias (bin/daemon_smoke.ml). *)

open Adpm_core
open Adpm_teamsim
open Adpm_serve
module Json = Adpm_trace.Json

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 Wire.Reader framing} *)

let drain reader =
  let rec go acc =
    match Wire.Reader.next reader with
    | `Frame f -> go (f :: acc)
    | `Pending | `Oversize -> List.rev acc
  in
  go []

let test_reader_framing () =
  let r = Wire.Reader.create () in
  Wire.Reader.feed r "{\"op\":\"he";
  Alcotest.(check (list string)) "partial frame pends" [] (drain r);
  Wire.Reader.feed r "llo\"}\n{\"a\":1}\r\n{\"b\":";
  Alcotest.(check (list string))
    "two complete frames, CR stripped"
    [ "{\"op\":\"hello\"}"; "{\"a\":1}" ]
    (drain r);
  Wire.Reader.feed r "2}\n";
  Alcotest.(check (list string)) "tail completes" [ "{\"b\":2}" ] (drain r);
  (* empty lines are skipped, not delivered as empty frames *)
  Wire.Reader.feed r "\n\n{\"c\":3}\n";
  Alcotest.(check (list string)) "blank lines skipped" [ "{\"c\":3}" ] (drain r)

let test_reader_oversize_sticky () =
  let r = Wire.Reader.create ~max_frame:8 () in
  Wire.Reader.feed r "{\"ok\":1}\n";
  Alcotest.(check (list string)) "frame at bound" [ "{\"ok\":1}" ] (drain r);
  Wire.Reader.feed r (String.make 64 'x');
  Alcotest.(check bool) "oversize detected" true
    (match Wire.Reader.next r with `Oversize -> true | _ -> false);
  (* sticky: even a newline plus a small frame cannot revive the reader *)
  Wire.Reader.feed r "\n{\"a\":1}\n";
  Alcotest.(check bool) "oversize is sticky" true
    (match Wire.Reader.next r with `Oversize -> true | _ -> false)

(* {2 Request codec} *)

let roundtrip req =
  match Wire.request_of_json (Wire.request_to_json req) with
  | Ok r -> r = req
  | Error _ -> false

let test_request_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.(check bool) "request survives encode/decode" true
        (roundtrip req))
    [
      Wire.Hello;
      Wire.Open
        { scenario = "simple"; mode = Dpm.Adpm; seed = 7; designer = "alice" };
      Wire.Open
        {
          scenario = "lna";
          mode = Dpm.Conventional;
          seed = 1;
          designer = "circuit";
        };
      Wire.Exec { session = "s1"; line = "set x 1" };
      Wire.Status { session = "s1" };
      Wire.Checkpoint { session = "s1"; path = Some "/tmp/a.jsonl" };
      Wire.Checkpoint { session = "s1"; path = None };
      Wire.Resume { path = "/tmp/a.jsonl" };
      Wire.Close { session = "s1" };
      Wire.Shutdown;
    ]

let test_request_bad_shapes () =
  let bad j =
    match Wire.request_of_json j with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "non-object rejected" true (bad (Json.Str "hello"));
  Alcotest.(check bool) "missing op rejected" true (bad (Json.Obj []));
  Alcotest.(check bool) "unknown op rejected" true
    (bad (Json.Obj [ ("op", Json.Str "frobnicate") ]));
  Alcotest.(check bool) "open without scenario rejected" true
    (bad (Json.Obj [ ("op", Json.Str "open") ]));
  Alcotest.(check bool) "exec without line rejected" true
    (bad (Json.Obj [ ("op", Json.Str "exec"); ("session", Json.Str "s1") ]));
  Alcotest.(check bool) "bad mode rejected" true
    (bad
       (Json.Obj
          [
            ("op", Json.Str "open");
            ("scenario", Json.Str "simple");
            ("designer", Json.Str "alice");
            ("mode", Json.Str "quantum");
          ]))

(* {2 Dispatcher protocol tests (in-process daemon)} *)

let temp_path suffix =
  let f = Filename.temp_file "adpm-serve" suffix in
  Sys.remove f;
  f

let with_daemon ?(max_sessions = 256) f =
  let sock = temp_path ".sock" in
  let cfg =
    {
      (Daemon.default_config ~addr:(Daemon.Unix_path sock)
         ~scenarios:[ Adpm_scenarios.Simple.scenario ])
      with
      Daemon.dc_max_sessions = max_sessions;
    }
  in
  let d = Daemon.create cfg in
  Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f d)

let field name frame = Json.member name frame

let str_field name frame =
  match Option.bind (field name frame) Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string field %S" name

let is_ok frame =
  match Option.bind (field "ok" frame) Json.to_bool with
  | Some b -> b
  | None -> Alcotest.fail "response lacks the ok field"

let expect_ok frame =
  if not (is_ok frame) then
    Alcotest.failf "expected ok frame, got error %s/%s" (str_field "code" frame)
      (str_field "error" frame);
  frame

let expect_err code frame =
  Alcotest.(check bool) "frame is an error" false (is_ok frame);
  Alcotest.(check string) "error code" code (str_field "code" frame);
  frame

let obj fields = Json.Obj fields
let op name rest = obj (("op", Json.Str name) :: rest)

let open_simple ?(designer = "alice") ?(seed = 3) d =
  let frame =
    expect_ok
      (Daemon.handle d
         (op "open"
            [
              ("scenario", Json.Str "simple");
              ("designer", Json.Str designer);
              ("mode", Json.Str "adpm");
              ("seed", Json.Num (float_of_int seed));
            ]))
  in
  str_field "session" frame

let test_hello_and_open () =
  with_daemon (fun d ->
      let hello = expect_ok (Daemon.handle d (op "hello" [])) in
      Alcotest.(check string) "server name" "teamsimd"
        (str_field "server" hello);
      Alcotest.(check bool) "scenario listed" true
        (match Option.bind (field "scenarios" hello) Json.to_list with
        | Some l -> List.exists (fun s -> Json.to_str s = Some "simple") l
        | None -> false);
      let sid = open_simple d in
      Alcotest.(check int) "one session" 1 (Daemon.session_count d);
      let status =
        expect_ok (Daemon.handle d (op "status" [ ("session", Json.Str sid) ]))
      in
      Alcotest.(check string) "status echoes designer" "alice"
        (str_field "designer" status);
      ignore
        (expect_ok (Daemon.handle d (op "close" [ ("session", Json.Str sid) ])));
      Alcotest.(check int) "closed" 0 (Daemon.session_count d))

let test_error_codes () =
  with_daemon ~max_sessions:1 (fun d ->
      ignore
        (expect_err "parse" (Daemon.handle_line d "this is not json"));
      ignore (expect_err "bad_request" (Daemon.handle_line d "\"a string\""));
      ignore
        (expect_err "bad_request"
           (Daemon.handle d (op "frobnicate" [])));
      ignore
        (expect_err "unknown_scenario"
           (Daemon.handle d
              (op "open"
                 [
                   ("scenario", Json.Str "nonesuch");
                   ("designer", Json.Str "alice");
                 ])));
      ignore
        (expect_err "bad_request"
           (Daemon.handle d
              (op "open"
                 [
                   ("scenario", Json.Str "simple");
                   ("designer", Json.Str "nobody");
                 ])));
      ignore
        (expect_err "unknown_session"
           (Daemon.handle d (op "exec"
              [ ("session", Json.Str "s99"); ("line", Json.Str "status") ])));
      let sid = open_simple d in
      ignore
        (expect_err "session_limit"
           (Daemon.handle d
              (op "open"
                 [
                   ("scenario", Json.Str "simple");
                   ("designer", Json.Str "bob");
                 ])));
      (* a command the session rejects is code=command, session intact *)
      ignore
        (expect_err "command"
           (Daemon.handle d
              (op "exec"
                 [ ("session", Json.Str sid); ("line", Json.Str "frobnicate") ])));
      Alcotest.(check int) "session survives command error" 1
        (Daemon.session_count d))

let test_id_echo () =
  with_daemon (fun d ->
      let frame =
        Daemon.handle d (obj [ ("op", Json.Str "hello"); ("id", Json.Num 42.) ])
      in
      Alcotest.(check bool) "numeric id echoed" true
        (field "id" frame = Some (Json.Num 42.));
      let err =
        Daemon.handle_line d "{\"op\":\"nope\",\"id\":\"req-7\"}"
      in
      Alcotest.(check bool) "id echoed on errors too" true
        (field "id" err = Some (Json.Str "req-7")))

(* The daemon must produce byte-identical command outputs to a local
   Interactive session with the same scenario/mode/seed/designer — the
   acceptance bar for "scripted socket session matches the CLI loop". *)
let test_cli_equivalence () =
  let script =
    [ "status"; "auto"; "auto"; "step"; "suggest"; "auto"; "props"; "step" ]
  in
  with_daemon (fun d ->
      let sid = open_simple d ~designer:"alice" ~seed:5 in
      let local =
        Interactive.create ~mode:Dpm.Adpm ~seed:5
          Adpm_scenarios.Simple.scenario ~designer:"alice"
      in
      List.iter
        (fun line ->
          let remote =
            str_field "output"
              (expect_ok
                 (Daemon.handle d
                    (op "exec"
                       [ ("session", Json.Str sid); ("line", Json.Str line) ])))
          in
          let expected =
            match Interactive.execute local line with
            | Ok out -> out
            | Error e -> Alcotest.failf "local session rejected %S: %s" line e
          in
          Alcotest.(check string)
            (Printf.sprintf "output of %S matches CLI" line)
            expected remote)
        script)

(* {2 Checkpoint / resume} *)

let exec_ok d sid line =
  str_field "output"
    (expect_ok
       (Daemon.handle d
          (op "exec" [ ("session", Json.Str sid); ("line", Json.Str line) ])))

let test_checkpoint_resume () =
  let ckpt = temp_path ".jsonl" in
  let script = [ "auto"; "auto"; "step"; "auto" ] in
  let fp_before, commands_after =
    with_daemon (fun d ->
        let sid = open_simple d ~designer:"alice" ~seed:9 in
        List.iter (fun l -> ignore (exec_ok d sid l)) script;
        let frame =
          expect_ok
            (Daemon.handle d
               (op "checkpoint"
                  [ ("session", Json.Str sid); ("path", Json.Str ckpt) ]))
        in
        (str_field "fingerprint" frame, [ "step"; "auto" ]))
  in
  (* the first daemon is gone (stopped); a fresh one resumes from disk *)
  with_daemon (fun d ->
      let frame =
        expect_ok (Daemon.handle d (op "resume" [ ("path", Json.Str ckpt) ]))
      in
      Alcotest.(check string) "fingerprint preserved across restart" fp_before
        (str_field "fingerprint" frame);
      let sid = str_field "session" frame in
      (* the resumed session must behave exactly like an uninterrupted
         one: same designer RNG stream, same outputs *)
      let local =
        Interactive.create ~mode:Dpm.Adpm ~seed:9
          Adpm_scenarios.Simple.scenario ~designer:"alice"
      in
      List.iter
        (fun l -> ignore (Result.get_ok (Interactive.execute local l)))
        script;
      List.iter
        (fun l ->
          let expected = Result.get_ok (Interactive.execute local l) in
          Alcotest.(check string)
            (Printf.sprintf "post-resume %S matches uninterrupted run" l)
            expected (exec_ok d sid l))
        commands_after);
  Sys.remove ckpt

let test_resume_errors () =
  with_daemon (fun d ->
      ignore
        (expect_err "io"
           (Daemon.handle d
              (op "resume" [ ("path", Json.Str "/nonexistent/ckpt.jsonl") ])));
      let bad = temp_path ".jsonl" in
      Out_channel.with_open_text bad (fun oc ->
          output_string oc "{\"not\":\"a checkpoint\"}\n");
      ignore
        (expect_err "bad_checkpoint"
           (Daemon.handle d (op "resume" [ ("path", Json.Str bad) ])));
      Sys.remove bad;
      (* a real checkpoint with a tampered fingerprint must be refused *)
      let ckpt = temp_path ".jsonl" in
      let sid = open_simple d in
      ignore (exec_ok d sid "auto");
      ignore
        (expect_ok
           (Daemon.handle d
              (op "checkpoint"
                 [ ("session", Json.Str sid); ("path", Json.Str ckpt) ])));
      let contents = In_channel.with_open_text ckpt In_channel.input_all in
      let header, rest =
        match String.index_opt contents '\n' with
        | Some i ->
          ( String.sub contents 0 i,
            String.sub contents i (String.length contents - i) )
        | None -> Alcotest.fail "checkpoint has no header line"
      in
      let tampered_header =
        match Json.parse header with
        | Ok (Json.Obj fields) ->
          Json.to_string
            (Json.Obj
               (List.map
                  (function
                    | "fingerprint", _ ->
                      ("fingerprint", Json.Str "ops=999 tampered")
                    | kv -> kv)
                  fields))
        | _ -> Alcotest.fail "checkpoint header does not parse"
      in
      Out_channel.with_open_text ckpt (fun oc ->
          output_string oc (tampered_header ^ rest));
      let frame = Daemon.handle d (op "resume" [ ("path", Json.Str ckpt) ]) in
      Alcotest.(check bool) "tampered checkpoint refused" true
        (match Option.bind (field "code" frame) Json.to_str with
        | Some ("resume_mismatch" | "bad_checkpoint") -> true
        | _ -> false);
      Sys.remove ckpt)

(* {2 Registry-backed resolution} *)

(* With the full registry injected (as the CLI does), a malformed gen:
   spec or an unreadable file: path must come back as a command-level
   [unknown_scenario] error frame — never a [session_failed] and never a
   torn-down daemon. *)
let test_registry_resolution_errors () =
  let sock = temp_path ".sock" in
  let cfg =
    {
      (Daemon.default_config ~addr:(Daemon.Unix_path sock)
         ~scenarios:Adpm_scenarios.Registry.builtin)
      with
      Daemon.dc_resolve = Adpm_scenarios.Registry.resolve_result;
    }
  in
  let d = Daemon.create cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let open_scenario name =
        Daemon.handle d
          (op "open"
             [ ("scenario", Json.Str name); ("designer", Json.Str "leader") ])
      in
      List.iter
        (fun (name, mention) ->
          let frame = expect_err "unknown_scenario" (open_scenario name) in
          Alcotest.(check bool)
            (Printf.sprintf "%S error mentions %S" name mention)
            true
            (contains (str_field "error" frame) mention);
          Alcotest.(check int)
            (Printf.sprintf "%S leaves no session behind" name)
            0 (Daemon.session_count d))
        [
          ("nonesuch", "unknown scenario");
          ("gen:frobs=1", "malformed gen: spec");
          ("file:/nonexistent/no.dddl", "cannot read scenario file");
        ];
      (* and a well-formed gen: reference opens a live session *)
      let frame = expect_ok (open_scenario "gen:n=3,k=1,seed=4") in
      let sid = str_field "session" frame in
      Alcotest.(check bool) "gen: session executes" true
        (contains (exec_ok d sid "status") "PROBLEMS"))

(* {2 Session isolation} *)

(* A session whose engine throws something other than the
   Invalid_argument family must be torn down with a [session_failed]
   frame while the daemon keeps serving everyone else. Stock scenarios
   cannot produce such a throw organically, so we wedge the session's
   trace sink through the test seam. *)
let test_session_failed_teardown () =
  with_daemon (fun d ->
      let victim = open_simple d ~designer:"alice" in
      let bystander = open_simple d ~designer:"bob" in
      (match Daemon.find_session d victim with
      | None -> Alcotest.fail "victim session not found"
      | Some s ->
        let wedged =
          Adpm_trace.Tracer.create
            {
              Adpm_trace.Sink.write = (fun _ -> failwith "sink wedged");
              close = (fun () -> ());
            }
        in
        Dpm.set_tracer (Interactive.dpm (Session.interactive s)) wedged);
      let frame =
        Daemon.handle d
          (op "exec" [ ("session", Json.Str victim); ("line", Json.Str "auto") ])
      in
      ignore (expect_err "session_failed" frame);
      Alcotest.(check bool) "failure message surfaced" true
        (contains (str_field "error" frame) "sink wedged");
      Alcotest.(check int) "victim torn down, bystander alive" 1
        (Daemon.session_count d);
      (* the daemon still serves: the bystander keeps working *)
      Alcotest.(check bool) "bystander still executes" true
        (contains (exec_ok d bystander "auto") "executed"))

let test_many_sessions () =
  with_daemon ~max_sessions:96 (fun d ->
      let designers = [| "alice"; "bob"; "leader" |] in
      let sids =
        List.init 64 (fun i ->
            open_simple d ~designer:designers.(i mod 3) ~seed:(i + 1))
      in
      Alcotest.(check int) "64 concurrent sessions" 64 (Daemon.session_count d);
      List.iter (fun sid -> ignore (exec_ok d sid "auto")) sids;
      List.iter
        (fun sid ->
          ignore
            (expect_ok
               (Daemon.handle d (op "close" [ ("session", Json.Str sid) ]))))
        sids;
      Alcotest.(check int) "all closed" 0 (Daemon.session_count d))

let suite =
  [
    ("reader framing", `Quick, test_reader_framing);
    ("reader oversize is sticky", `Quick, test_reader_oversize_sticky);
    ("request codec round-trip", `Quick, test_request_roundtrip);
    ("request codec rejects bad shapes", `Quick, test_request_bad_shapes);
    ("hello, open, status, close", `Quick, test_hello_and_open);
    ("protocol error codes", `Quick, test_error_codes);
    ("request ids echoed", `Quick, test_id_echo);
    ("daemon output equals CLI output", `Quick, test_cli_equivalence);
    ("checkpoint survives daemon restart", `Quick, test_checkpoint_resume);
    ("resume rejects bad artifacts", `Quick, test_resume_errors);
    ( "registry errors are command-level frames",
      `Quick,
      test_registry_resolution_errors );
    ("throwing session is isolated", `Quick, test_session_failed_teardown);
    ("64 sessions multiplex", `Quick, test_many_sessions);
  ]
