(* The temporal-property checker and schedule fuzzer.

   Hand-crafted satisfying and violating traces pin down each property's
   semantics (including every excusal: in-flight at halt, recipient down
   for the delivery window, fault-injector drop, unknown crash plan).
   QCheck then drives the one-pass evaluator against naive quadratic
   reference implementations over random traces. Finally the whole loop:
   an intentionally broken property makes the fuzzer find a violation,
   shrink it, and emit an artifact that replays deterministically — and
   ring-truncated traces are refused, never vacuously passed. *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios
open Adpm_trace
module Fault = Adpm_fault.Fault
module Model = Adpm_sim.Model
module Prop = Adpm_check.Prop
module Props = Adpm_check.Props
module Fuzz = Adpm_check.Fuzz

let stamp events =
  List.mapi (fun i e -> { Event.seq = i; clock = i; event = e }) events

let verdict_of name results =
  match List.find_opt (fun r -> r.Prop.c_prop = name) results with
  | Some r -> r.Prop.c_verdict
  | None -> Alcotest.failf "no result for property %s" name

let is_fail = function Prop.Fail _ -> true | _ -> false

let check_verdict label expected prop events =
  let results = Prop.check [ prop ] events in
  let v = verdict_of prop.Prop.p_name results in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%s)" label (Prop.verdict_to_string v))
    expected (is_fail v)

(* a designer executed op [index]; the checker learns the actor from it *)
let executed ?(designer = "ann") index =
  Event.Op_executed
    {
      index;
      designer;
      kind = "synthesis";
      evaluations = 1;
      newly_violated = [];
      resolved = [];
      skipped = [];
      spin = false;
    }

let pushed ?(recipient = "bob") ?(violations = [ 1 ]) op_index =
  Event.Notification_pushed { recipient; op_index; events = []; violations }

let delivered ?(recipient = "bob") ?(sent_at = 1) ?(delivered_at = 2) op_index =
  Event.Notification_delivered
    { recipient; op_index; sent_at; delivered_at; events = []; violations = [] }

let dropped ?(recipient = "bob") ?(at = 1) op_index =
  Event.Notification_dropped { recipient; op_index; at }

let turn ?(at = 0) designer = Event.Turn_started { designer; at }

(* {2 notified-or-resolved} *)

let p1 = Props.notified_or_resolved ~horizon:3

(* op 0 completes at 1; a later completion at 50 pushes the makespan far
   past the delivery window, so an undelivered violation is a real miss *)
let p1_base tail =
  stamp
    ([ executed 0; pushed 0; Event.Op_completed { index = 0; at = 1 } ]
    @ tail
    @ [ Event.Op_completed { index = 9; at = 50 } ])

let test_p1_verdicts () =
  check_verdict "undelivered violation fails" true p1 (p1_base []);
  check_verdict "delivery discharges" false p1 (p1_base [ delivered 0 ]);
  check_verdict "resolution discharges" false p1
    (p1_base
       [
         Event.Constraint_status_changed
           { cid = 1; old_status = Event.Violated; new_status = Event.Satisfied };
       ]);
  check_verdict "injector drop excuses" false p1 (p1_base [ dropped 0 ]);
  check_verdict "crashed recipient excuses" false p1
    (p1_base [ Event.Designer_crashed { designer = "bob"; at = 0 } ]);
  (* recipient crashed for part of the window, restarted after it *)
  check_verdict "crash window overlapping transit excuses" false p1
    (p1_base
       [
         Event.Designer_crashed { designer = "bob"; at = 2 };
         Event.Designer_restarted { designer = "bob"; at = 20 };
       ]);
  (* a delivery for a different op does not discharge *)
  check_verdict "unrelated delivery does not discharge" true p1
    (p1_base [ delivered 3 ]);
  (* resolution of a different constraint does not discharge *)
  check_verdict "unrelated resolution does not discharge" true p1
    (p1_base
       [
         Event.Constraint_status_changed
           { cid = 2; old_status = Event.Violated; new_status = Event.Satisfied };
       ])

let test_p1_excusals () =
  (* still in flight: the makespan never outruns the delivery window *)
  check_verdict "in-flight at halt is excused" false p1
    (stamp [ executed 0; pushed 0; Event.Op_completed { index = 0; at = 1 } ]);
  (* lockstep traces have no virtual-time events at all *)
  check_verdict "lockstep trace is vacuous" false p1
    (stamp [ executed 0; pushed 0 ]);
  (* the actor's own feedback is local, never delivered as a teammate push *)
  check_verdict "own push is excused" false p1
    (stamp
       [
         executed ~designer:"bob" 0;
         pushed 0;
         Event.Op_completed { index = 0; at = 1 };
         Event.Op_completed { index = 9; at = 50 };
       ]);
  (* an empty violations list opens no obligation *)
  check_verdict "no violations, no obligation" false p1
    (stamp
       [
         executed 0;
         pushed ~violations:[] 0;
         Event.Op_completed { index = 0; at = 1 };
         Event.Op_completed { index = 9; at = 50 };
       ])

(* adversarial traces can record two crashes of one designer before any
   restart; the second restart must close the older still-open window.
   Before the fix it was discarded when the newest window was already
   closed, leaving the recipient "down forever" — which excused a real
   miss that the naive reference flags (found by the QCheck agreement
   test). Both restarts predate the delivery window, so no excuse holds. *)
let test_p1_nested_crash_windows () =
  check_verdict "restart closes the oldest open crash window" true p1
    (p1_base
       [
         Event.Designer_crashed { designer = "bob"; at = 2 };
         Event.Designer_crashed { designer = "bob"; at = 3 };
         Event.Designer_restarted { designer = "bob"; at = 0 };
         Event.Designer_restarted { designer = "bob"; at = 0 };
       ])

(* {2 no-starvation} *)

let p2 = Props.no_starvation ()

let test_p2_verdicts () =
  (* roster {a,b}: bound = 2*2 + 4 = 8 other turns *)
  check_verdict "alternating turns pass" false p2
    (stamp (List.concat (List.init 10 (fun _ -> [ turn "a"; turn "b" ]))));
  check_verdict "nine turns without a's turn fail" true p2
    (stamp (turn "a" :: List.init 9 (fun _ -> turn "b")));
  check_verdict "eight turns stay within the bound" false p2
    (stamp (turn "a" :: List.init 8 (fun _ -> turn "b")));
  (* a crashed designer is down, not starving *)
  check_verdict "crash disarms the counter" false p2
    (stamp
       ((turn "a" :: [ Event.Designer_crashed { designer = "a"; at = 1 } ])
       @ List.init 12 (fun _ -> turn "b")))

(* {2 crash-rejoins} *)

let crash_plan = [ { Fault.cr_designer = "b"; cr_at = 5; cr_recover = 3 } ]

let test_p3_verdicts () =
  let p3 = Props.crash_rejoins ~crashes:crash_plan () in
  let base tail =
    stamp
      ([ turn "a"; turn "b"; Event.Designer_crashed { designer = "b"; at = 5 } ]
      @ tail
      @ [ Event.Op_completed { index = 0; at = 40 } ])
  in
  check_verdict "restart never fires" true p3 (base []);
  check_verdict "restart and rejoin pass" false p3
    (base
       [ Event.Designer_restarted { designer = "b"; at = 8 }; turn ~at:9 "b" ]);
  (* restarted but never granted a turn again: roster {a,b} bound is 8 *)
  check_verdict "restart without rejoining fails" true p3
    (base
       (Event.Designer_restarted { designer = "b"; at = 8 }
       :: List.init 9 (fun _ -> turn "a")));
  (* without the plan the restart deadline is unknowable — excused *)
  let p3_blind = Props.crash_rejoins () in
  check_verdict "unknown plan excuses the deadline" false p3_blind (base []);
  (* a restart due after the halt is excused even with the plan *)
  let p3' = Props.crash_rejoins ~crashes:crash_plan () in
  check_verdict "restart due after halt is excused" false p3'
    (stamp
       [
         turn "a"; turn "b";
         Event.Designer_crashed { designer = "b"; at = 5 };
         Event.Op_completed { index = 0; at = 6 };
       ])

(* {2 no-deliver-after-drop} *)

let p4 = Props.no_deliver_after_drop

let test_p4_verdicts () =
  check_verdict "deliver after drop fails" true p4
    (stamp [ dropped 0; delivered 0 ]);
  check_verdict "drop alone passes" false p4 (stamp [ dropped 0 ]);
  check_verdict "deliver before drop passes" false p4
    (stamp [ delivered 0; dropped 0 ]);
  check_verdict "different op passes" false p4
    (stamp [ dropped 0; delivered 1 ]);
  check_verdict "different recipient passes" false p4
    (stamp [ dropped 0; delivered ~recipient:"eve" 0 ])

(* {2 Truncation refusal} *)

let all_truncated results =
  List.for_all
    (fun r ->
      match r.Prop.c_verdict with Prop.Truncated _ -> true | _ -> false)
    results

let test_truncation_refused () =
  let events = stamp [ dropped 0; delivered 0 ] in
  (* an explicit drop count from a ring sink *)
  Alcotest.(check bool)
    "explicit dropped count refuses" true
    (all_truncated (Prop.check ~dropped:3 (Props.suite ()) events));
  (* a seq gap betrays truncation even without the count *)
  let gappy =
    List.mapi
      (fun i (ev : Event.stamped) -> { ev with Event.seq = i + 5 })
      events
  in
  let results = Prop.check (Props.suite ()) gappy in
  Alcotest.(check bool) "seq offset refuses" true (all_truncated results);
  (match results with
  | { Prop.c_verdict = Prop.Truncated { dropped }; _ } :: _ ->
    Alcotest.(check int) "missing-event lower bound" 5 dropped
  | _ -> Alcotest.fail "expected truncated verdicts");
  (* and a violating complete trace still fails, not truncates *)
  Alcotest.(check bool)
    "complete trace keeps its verdict" true
    (is_fail (verdict_of "no-deliver-after-drop" (Prop.check [ p4 ] events)))

let test_ring_trace_refused () =
  let buf, sink = Sink.memory ~capacity:8 in
  let tracer = Tracer.create sink in
  let cfg =
    { (Config.default ~mode:Dpm.Adpm ~seed:1) with Config.max_ops = 200 }
  in
  let (_ : Engine.outcome) = Engine.run ~tracer cfg Sensor.scenario in
  Tracer.close tracer;
  let dropped = Sink.Ring.dropped buf in
  Alcotest.(check bool) "ring overwrote events" true (dropped > 0);
  let events = Sink.Ring.contents buf in
  Alcotest.(check bool)
    "explicit count refuses" true
    (all_truncated (Prop.check ~dropped (Props.suite ()) events));
  Alcotest.(check bool)
    "seq gap alone refuses" true
    (all_truncated (Prop.check (Props.suite ()) events))

(* {2 Collect sink: nothing ever truncated} *)

let test_collect_sink () =
  let buf, sink = Sink.collector () in
  let tracer = Tracer.create sink in
  for i = 0 to 999 do
    Tracer.emit tracer (Event.Op_completed { index = i; at = i })
  done;
  Tracer.close tracer;
  Alcotest.(check int) "length" 1000 (Sink.Collect.length buf);
  let events = Sink.Collect.contents buf in
  List.iteri
    (fun i (ev : Event.stamped) ->
      if ev.Event.seq <> i then
        Alcotest.failf "event %d has seq %d" i ev.Event.seq)
    events;
  Alcotest.(check (option int)) "no truncation" None (Prop.truncation events)

(* {2 QCheck: one-pass evaluator vs naive references} *)

let designers = [ "a"; "b"; "c" ]

let gen_event =
  QCheck.Gen.(
    let designer = oneofl designers in
    let op = int_bound 4 in
    let cid = int_bound 2 in
    let at = int_bound 30 in
    frequency
      [
        (4, map2 (fun d t -> Event.Turn_started { designer = d; at = t }) designer at);
        ( 3,
          map2
            (fun r o ->
              Event.Notification_pushed
                { recipient = r; op_index = o; events = []; violations = [ 1 ] })
            designer op );
        ( 3,
          map3
            (fun r o t ->
              Event.Notification_delivered
                {
                  recipient = r;
                  op_index = o;
                  sent_at = t;
                  delivered_at = t + 1;
                  events = [];
                  violations = [];
                })
            designer op at );
        ( 2,
          map3
            (fun r o t ->
              Event.Notification_dropped { recipient = r; op_index = o; at = t })
            designer op at );
        (1, map2 (fun d t -> Event.Designer_crashed { designer = d; at = t }) designer at);
        (1, map2 (fun d t -> Event.Designer_restarted { designer = d; at = t }) designer at);
        ( 1,
          map
            (fun c ->
              Event.Constraint_status_changed
                {
                  cid = c;
                  old_status = Event.Violated;
                  new_status = Event.Satisfied;
                })
            cid );
        (2, map2 (fun o t -> Event.Op_completed { index = o; at = t }) op at);
        (1, map (fun o -> executed ~designer:"a" o) op);
      ])

let gen_trace = QCheck.Gen.(map stamp (list_size (int_bound 60) gen_event))

let arb_trace =
  QCheck.make
    ~print:(fun events ->
      String.concat "\n" (List.map Codec.to_line events))
    gen_trace

(* naive makespan: same definition as the evaluator's, independent fold *)
let naive_makespan events =
  List.fold_left
    (fun acc (ev : Event.stamped) ->
      let t =
        match ev.Event.event with
        | Event.Op_completed { at; _ }
        | Event.Turn_started { at; _ }
        | Event.Designer_crashed { at; _ }
        | Event.Designer_restarted { at; _ }
        | Event.Notification_dropped { at; _ }
        | Event.Notification_duplicated { at; _ } ->
          at
        | Event.Notification_delivered { delivered_at; _ } -> delivered_at
        | _ -> 0
      in
      max acc t)
    0 events

let naive_crash_windows events designer =
  let opens, windows =
    List.fold_left
      (fun (opened, ws) (ev : Event.stamped) ->
        match ev.Event.event with
        | Event.Designer_crashed { designer = d; at } when d = designer ->
          (at :: opened, ws)
        | Event.Designer_restarted { designer = d; at } when d = designer -> (
          match opened with
          | c :: rest -> (rest, (c, Some at) :: ws)
          | [] -> ([], ws))
        | _ -> (opened, ws))
      ([], []) events
  in
  List.map (fun c -> (c, None)) opens @ windows

let naive_crashed_during events designer t1 t2 =
  List.exists
    (fun (c, r) ->
      match r with Some r -> c <= t2 && r >= t1 | None -> c <= t2)
    (naive_crash_windows events designer)

(* naive P1: quadratic scan per pushed violation *)
let naive_notified events ~horizon =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let ops = List.length (List.filter (fun (ev : Event.stamped) ->
      match ev.Event.event with Event.Op_completed _ -> true | _ -> false)
      events)
  in
  let makespan = naive_makespan events in
  let last tbl_of =
    List.fold_left
      (fun acc (ev : Event.stamped) ->
        match tbl_of ev.Event.event with Some kv -> kv :: acc | None -> acc)
      [] events
  in
  let completions =
    last (function
      | Event.Op_completed { index; at } -> Some (index, at)
      | _ -> None)
  in
  let actors =
    last (function
      | Event.Op_executed { index; designer; _ } -> Some (index, designer)
      | _ -> None)
  in
  let violated = ref false in
  for i = 0 to n - 1 do
    match arr.(i).Event.event with
    | Event.Notification_pushed { recipient; op_index; violations; _ }
      when violations <> [] ->
      List.iter
        (fun cid ->
          let closed = ref false in
          for j = i + 1 to n - 1 do
            match arr.(j).Event.event with
            | Event.Notification_delivered { recipient = r; op_index = o; _ }
            | Event.Notification_dropped { recipient = r; op_index = o; _ }
              when r = recipient && o = op_index ->
              closed := true
            | Event.Constraint_status_changed
                { cid = c; new_status = Event.Satisfied | Event.Consistent; _ }
              when c = cid ->
              closed := true
            | _ -> ()
          done;
          let excused =
            ops = 0
            ||
            match List.assoc_opt op_index completions with
            | None -> true
            | Some sent ->
              sent + horizon >= makespan
              || naive_crashed_during events recipient sent (sent + horizon)
              || List.assoc_opt op_index actors = Some recipient
          in
          if (not !closed) && not excused then violated := true)
        violations
    | _ -> ()
  done;
  !violated

(* naive P2: for every arming turn, walk forward counting other turns,
   recomputing the dynamic roster bound at each tick *)
let naive_starvation events ~slack =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let roster_at j =
    let seen = Hashtbl.create 8 in
    for k = 0 to j do
      match arr.(k).Event.event with
      | Event.Turn_started { designer; _ }
      | Event.Op_executed { designer; _ }
      | Event.Designer_crashed { designer; _ } ->
        Hashtbl.replace seen designer ()
      | _ -> ()
    done;
    Hashtbl.length seen
  in
  let violated = ref false in
  for i = 0 to n - 1 do
    match arr.(i).Event.event with
    | Event.Turn_started { designer = d; _ } ->
      let count = ref 0 in
      let live = ref true in
      for j = i + 1 to n - 1 do
        if !live then
          match arr.(j).Event.event with
          | Event.Turn_started { designer = e; _ } when e = d -> live := false
          | Event.Designer_crashed { designer = e; _ } when e = d ->
            live := false
          | Event.Turn_started _ ->
            incr count;
            if !count > (2 * roster_at j) + slack then violated := true
          | _ -> ()
      done
    | _ -> ()
  done;
  !violated

(* naive P4: any delivered pair preceded by a drop of the same pair *)
let naive_deliver_after_drop events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let violated = ref false in
  for j = 0 to n - 1 do
    match arr.(j).Event.event with
    | Event.Notification_delivered { recipient; op_index; _ } ->
      for i = 0 to j - 1 do
        match arr.(i).Event.event with
        | Event.Notification_dropped { recipient = r; op_index = o; _ }
          when r = recipient && o = op_index ->
          violated := true
        | _ -> ()
      done
    | _ -> ()
  done;
  !violated

let agree_test name prop naive =
  QCheck.Test.make ~name ~count:300 arb_trace (fun events ->
      let one_pass = is_fail (verdict_of prop.Prop.p_name (Prop.check [ prop ] events)) in
      one_pass = naive events)

let qcheck_notified =
  agree_test "one-pass notified-or-resolved agrees with naive reference"
    (Props.notified_or_resolved ~horizon:5)
    (naive_notified ~horizon:5)

let qcheck_starvation =
  agree_test "one-pass no-starvation agrees with naive reference"
    (Props.no_starvation ()) (naive_starvation ~slack:4)

let qcheck_deliver_after_drop =
  agree_test "one-pass no-deliver-after-drop agrees with naive reference"
    Props.no_deliver_after_drop naive_deliver_after_drop

(* {2 Shrink-plan algebra} *)

let test_shrink_plan () =
  Alcotest.(check int)
    "none has no candidates" 0
    (List.length (Fault.shrink_plan Fault.none));
  let plan =
    {
      Fault.p_drop = 0.4;
      p_dup = 0.2;
      p_jitter = 3;
      p_crashes = crash_plan;
    }
  in
  let cands = Fault.shrink_plan plan in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  Alcotest.(check bool)
    "crash removal offered" true
    (List.exists (fun p -> p.Fault.p_crashes = []) cands);
  Alcotest.(check bool)
    "drop zeroing offered" true
    (List.exists (fun p -> p.Fault.p_drop = 0.) cands);
  (* every candidate is strictly smaller in some dimension, never larger *)
  List.iter
    (fun p ->
      let smaller =
        p.Fault.p_drop < plan.Fault.p_drop
        || p.Fault.p_dup < plan.Fault.p_dup
        || p.Fault.p_jitter < plan.Fault.p_jitter
        || List.length p.Fault.p_crashes < List.length plan.Fault.p_crashes
      in
      let no_growth =
        p.Fault.p_drop <= plan.Fault.p_drop
        && p.Fault.p_dup <= plan.Fault.p_dup
        && p.Fault.p_jitter <= plan.Fault.p_jitter
        && List.length p.Fault.p_crashes <= List.length plan.Fault.p_crashes
      in
      Alcotest.(check bool) "strictly smaller" true (smaller && no_growth))
    cands

let test_max_delivery_delay () =
  Alcotest.(check int) "latency + jitter" 5
    (Model.max_delivery_delay ~latency:3 ~jitter:2);
  Alcotest.(check int) "negative jitter clamps" 3
    (Model.max_delivery_delay ~latency:3 ~jitter:(-1))

(* {2 End to end: fuzz, shrink, artifact, replay} *)

let scenarios_for_replay =
  [ Simple.scenario; Lna.scenario; Sensor.scenario; Receiver.scenario ]

(* intentionally broken: real fault plans drop notifications routinely *)
let bogus_no_drops =
  Prop.never ~name:"no-drops" ~doc:"no notification is ever dropped"
    (fun (ev : Event.stamped) ->
      match ev.Event.event with
      | Event.Notification_dropped { recipient; op_index; _ } ->
        Some (Printf.sprintf "notification %s#%d dropped" recipient op_index)
      | _ -> None)

let test_fuzz_finds_shrinks_replays () =
  let faults =
    { Fault.p_drop = 0.5; p_dup = 0.2; p_jitter = 2; p_crashes = crash_plan }
  in
  let faults = { faults with Fault.p_crashes = [ { Fault.cr_designer = "mems"; cr_at = 5; cr_recover = 3 } ] } in
  let suite _ = [ bogus_no_drops ] in
  let report =
    Fuzz.fuzz ~suite ~faults ~max_ops:200 ~mode:Dpm.Adpm ~seed:5 ~count:10
      Sensor.scenario
  in
  match report.Fuzz.fz_violation with
  | None -> Alcotest.fail "the broken property was never violated"
  | Some v ->
    Alcotest.(check string) "failing property" "no-drops" v.Fuzz.v_prop;
    Alcotest.(check bool) "witness window ordered" true
      (v.Fuzz.v_from_seq <= v.Fuzz.v_to_seq);
    Alcotest.(check bool) "shrinking simplified the schedule" true
      (v.Fuzz.v_shrink_steps >= 1);
    Alcotest.(check bool) "crash entries shrunk away" true
      (v.Fuzz.v_schedule.Fuzz.fs_faults.Fault.p_crashes = []);
    Alcotest.(check bool) "duplication shrunk away" true
      (v.Fuzz.v_schedule.Fuzz.fs_faults.Fault.p_dup = 0.);
    (* the minimized schedule reproduces deterministically *)
    let replay1 =
      Fuzz.run_schedule ~mode:Dpm.Adpm ~max_ops:200 Sensor.scenario
        v.Fuzz.v_schedule
    in
    let replay2 =
      Fuzz.run_schedule ~mode:Dpm.Adpm ~max_ops:200 Sensor.scenario
        v.Fuzz.v_schedule
    in
    Alcotest.(check bool) "bit-identical re-run" true (replay1 = replay2);
    Alcotest.(check bool) "re-run equals recorded trace" true
      (replay1 = v.Fuzz.v_events);
    Alcotest.(check bool) "minimized run still violates" true
      (is_fail (verdict_of "no-drops" (Prop.check [ bogus_no_drops ] replay1)));
    (* the artifact round-trips and replays to convergence *)
    let prefix = Filename.temp_file "adpm_fuzz" "" in
    let paths =
      Fuzz.write_artifact ~prefix ~scenario:"sensor" ~mode:Dpm.Adpm v
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
        try Sys.remove prefix with Sys_error _ -> ())
      (fun () ->
        let trace_path = prefix ^ ".trace.jsonl" in
        (match Codec.read_file trace_path with
        | Error msg -> Alcotest.failf "artifact trace unreadable: %s" msg
        | Ok events ->
          Alcotest.(check bool) "artifact trace round-trips" true
            (events = v.Fuzz.v_events);
          let report = Replay.run ~resolve:(Scenario.resolver scenarios_for_replay) events in
          Alcotest.(check bool) "artifact replays to convergence" true
            (Replay.converged report));
        match
          In_channel.with_open_text (prefix ^ ".json") In_channel.input_all
          |> Json.parse
        with
        | Error msg -> Alcotest.failf "artifact meta unparseable: %s" msg
        | Ok meta ->
          Alcotest.(check (option string))
            "meta names the property" (Some "no-drops")
            (Option.bind (Json.member "property" meta) Json.to_str);
          Alcotest.(check bool) "meta has a repro command" true
            (Option.bind (Json.member "repro" meta) Json.to_str <> None))

(* the standard suite holds over a spread of fuzzed schedules (the CI
   fuzz-smoke alias covers more; this keeps the contract in-tree) *)
let test_standard_suite_clean () =
  List.iter
    (fun mode ->
      let report =
        Fuzz.fuzz ~max_ops:300 ~mode ~seed:3 ~count:15 Sensor.scenario
      in
      match report.Fuzz.fz_violation with
      | None -> ()
      | Some v ->
        Alcotest.failf "property %s violated by %s: %s" v.Fuzz.v_prop
          (Fuzz.schedule_to_string v.Fuzz.v_original)
          v.Fuzz.v_reason)
    [ Dpm.Conventional; Dpm.Adpm ]

(* {2 Analyzer: degenerate traces must not leak NaN into JSON} *)

let contains_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_analyze_degenerate () =
  List.iter
    (fun (label, events) ->
      let report = Analyze.analyze events in
      Alcotest.(check int) (label ^ ": no deliveries") 0 report.Analyze.r_deliveries;
      let s = Json.to_string (Analyze.to_json report) in
      Alcotest.(check bool) (label ^ ": no nan in JSON") false
        (contains_substring (String.lowercase_ascii s) "nan");
      match Json.parse s with
      | Error msg -> Alcotest.failf "%s: JSON unparseable: %s" label msg
      | Ok j ->
        Alcotest.(check bool)
          (label ^ ": latency mean is null") true
          (Json.member "delivery_latency_mean" j = Some Json.Null))
    [
      ("empty trace", []);
      ( "run-started only",
        stamp
          [
            Event.Run_started
              { scenario = "x"; mode = "ADPM"; seed = 1; engine = "full" };
          ] );
      ("turns but no deliveries", stamp [ turn "a"; turn "b" ]);
    ]

let test_analyze_counts_turns () =
  let report = Analyze.analyze (stamp [ turn "a"; turn ~at:3 "b" ]) in
  Alcotest.(check int) "turns counted" 2 report.Analyze.r_turns;
  Alcotest.(check int) "turns advance makespan" 3 report.Analyze.r_makespan

let suite =
  [
    Alcotest.test_case "notified-or-resolved verdicts" `Quick test_p1_verdicts;
    Alcotest.test_case "notified-or-resolved excusals" `Quick test_p1_excusals;
    Alcotest.test_case "nested crash windows close in order" `Quick
      test_p1_nested_crash_windows;
    Alcotest.test_case "no-starvation verdicts" `Quick test_p2_verdicts;
    Alcotest.test_case "crash-rejoins verdicts" `Quick test_p3_verdicts;
    Alcotest.test_case "no-deliver-after-drop verdicts" `Quick test_p4_verdicts;
    Alcotest.test_case "truncation is refused" `Quick test_truncation_refused;
    Alcotest.test_case "ring-truncated engine trace is refused" `Quick
      test_ring_trace_refused;
    Alcotest.test_case "collect sink keeps everything" `Quick test_collect_sink;
    QCheck_alcotest.to_alcotest qcheck_notified;
    QCheck_alcotest.to_alcotest qcheck_starvation;
    QCheck_alcotest.to_alcotest qcheck_deliver_after_drop;
    Alcotest.test_case "fault plan shrink candidates" `Quick test_shrink_plan;
    Alcotest.test_case "max delivery delay" `Quick test_max_delivery_delay;
    Alcotest.test_case "fuzz finds, shrinks, replays" `Slow
      test_fuzz_finds_shrinks_replays;
    Alcotest.test_case "standard suite clean on fuzzed schedules" `Slow
      test_standard_suite_clean;
    Alcotest.test_case "analyzer degenerate traces stay NaN-free" `Quick
      test_analyze_degenerate;
    Alcotest.test_case "analyzer counts turns" `Quick test_analyze_counts_turns;
  ]
