(* Tests for Adpm_core: design objects, problems, the DPM transition
   function in both modes (status freshness, verification eligibility,
   cross-subsystem detection, spins), heuristic-support mining, the
   notification manager, and the browser renderings. *)

open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core

let v = Expr.var
let c = Expr.const
let status = Alcotest.testable Constr.pp_status ( = )

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 Design_object} *)

let test_object_versioning () =
  let o = Design_object.make ~name:"o" ~properties:[ "a"; "b" ] () in
  Alcotest.(check string) "initial" "1.0.0" (Design_object.version_string o);
  Design_object.bump_patch o;
  Alcotest.(check string) "patch" "1.0.1" (Design_object.version_string o);
  Design_object.bump_minor o;
  Alcotest.(check string) "minor resets patch" "1.1.0" (Design_object.version_string o);
  Alcotest.(check bool) "owns" true (Design_object.owns o "a");
  Alcotest.(check bool) "not owns" false (Design_object.owns o "z")

(* {2 Problem} *)

let test_problem_links () =
  let parent = Problem.make ~id:0 ~name:"top" ~owner:"lead" () in
  let child = Problem.make ~id:1 ~name:"sub" ~owner:"des" ~outputs:[ "x" ] () in
  Problem.link_child ~parent ~child;
  Alcotest.(check (list int)) "children" [ 1 ] parent.Problem.pr_children;
  Alcotest.(check (option int)) "parent" (Some 0) child.Problem.pr_parent;
  Alcotest.(check bool) "leaf" true (Problem.is_leaf child);
  Alcotest.(check bool) "not leaf" false (Problem.is_leaf parent);
  Problem.add_dependency child 5;
  Problem.add_dependency child 5;
  Alcotest.(check (list int)) "dependency dedup" [ 5 ] child.Problem.pr_depends_on;
  Problem.add_constraint_id child 3;
  Problem.add_constraint_id child 3;
  Alcotest.(check (list int)) "constraint dedup" [ 3 ] child.Problem.pr_constraints

let test_problem_properties () =
  let p = Problem.make ~id:0 ~name:"p" ~owner:"o" ~inputs:[ "a"; "b" ]
      ~outputs:[ "b"; "c" ] () in
  Alcotest.(check (list string)) "inputs then new outputs" [ "a"; "b"; "c" ]
    (Problem.properties p)

(* {2 A two-subsystem fixture} *)

(* system: leader owns the cross constraint xa + xb <= budget;
   alice owns A (output xa), bob owns B (output xb). *)
let fixture mode =
  let net = Network.create () in
  Network.add_prop net "xa" (Domain.continuous 0. 10.);
  Network.add_prop net "xb" (Domain.continuous 0. 10.);
  Network.add_prop net "budget" (Domain.continuous 1. 20.);
  let c_cross =
    Network.add_constraint net ~name:"cross" Expr.(v "xa" + v "xb") Constr.Le
      (v "budget")
  in
  let c_a = Network.add_constraint net ~name:"amin" (v "xa") Constr.Ge (c 1.) in
  let c_b = Network.add_constraint net ~name:"bmin" (v "xb") Constr.Ge (c 1.) in
  Network.assign net "budget" (Value.Num 10.);
  let objects =
    [
      Design_object.make ~name:"A" ~properties:[ "xa" ] ();
      Design_object.make ~name:"B" ~properties:[ "xb" ] ();
    ]
  in
  let top =
    Problem.make ~id:0 ~name:"system" ~owner:"leader" ~inputs:[ "budget" ]
      ~constraints:[ c_cross.Constr.id ] ()
  in
  let dpm = Dpm.create ~mode net ~objects ~top in
  let pa =
    Problem.make ~id:1 ~name:"A" ~owner:"alice" ~outputs:[ "xa" ]
      ~constraints:[ c_a.Constr.id ] ~object_name:"A" ()
  in
  let pb =
    Problem.make ~id:2 ~name:"B" ~owner:"bob" ~outputs:[ "xb" ]
      ~constraints:[ c_b.Constr.id ] ~object_name:"B" ()
  in
  Dpm.register_problem dpm ~parent:(Some 0) pa;
  Dpm.register_problem dpm ~parent:(Some 0) pb;
  (dpm, c_cross, c_a, c_b)

let synth designer problem bindings =
  Operator.synthesis ~designer ~problem
    (List.map (fun (p, x) -> (p, Value.Num x)) bindings)

(* {2 DPM structure} *)

let test_dpm_accessors () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  Alcotest.(check (list string)) "designers in order" [ "leader"; "alice"; "bob" ]
    (Dpm.designers dpm);
  Alcotest.(check int) "three problems" 3 (List.length (Dpm.problems dpm));
  Alcotest.(check int) "alice owns one" 1
    (List.length (Dpm.problems_owned_by dpm "alice"));
  Alcotest.(check bool) "object lookup" true (Dpm.find_object dpm "A" <> None);
  Alcotest.(check int) "fresh id" 3 (Dpm.fresh_problem_id dpm)

let test_subsystems_and_cross () =
  let dpm, c_cross, c_a, _ = fixture Dpm.Adpm in
  Alcotest.(check (option int)) "xa in subsystem 1" (Some 1)
    (Dpm.subsystem_of_prop dpm "xa");
  Alcotest.(check (option int)) "xb in subsystem 2" (Some 2)
    (Dpm.subsystem_of_prop dpm "xb");
  Alcotest.(check (option int)) "budget is system-level" None
    (Dpm.subsystem_of_prop dpm "budget");
  Alcotest.(check bool) "cross constraint" true (Dpm.is_cross_subsystem dpm c_cross);
  Alcotest.(check bool) "internal constraint" false (Dpm.is_cross_subsystem dpm c_a)

let test_synthesis_validation () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  Alcotest.(check bool) "assigning a non-output fails" true
    (try
       ignore (Dpm.apply dpm (synth "alice" 1 [ ("xb", 2.) ]));
       false
     with Invalid_argument _ -> true)

(* {2 ADPM mode semantics} *)

let test_adpm_propagation_after_synthesis () =
  let dpm, _, _, c_b = fixture Dpm.Adpm in
  let r = Dpm.apply dpm (synth "alice" 1 [ ("xa", 9.5) ]) in
  Alcotest.(check bool) "evaluations charged" true (r.Dpm.r_evaluations > 0);
  (* xa = 9.5 narrows xb to <= 0.5 through the cross budget, which makes
     bmin (xb >= 1) certainly violated: the conflict is detected before bob
     binds anything *)
  Alcotest.(check status) "conflict detected early" Constr.Violated
    (Dpm.known_status dpm c_b.Constr.id);
  Alcotest.(check bool) "bmin in newly violated" true
    (List.mem c_b.Constr.id r.Dpm.r_newly_violated)

let test_adpm_heuristic_info () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 4.) ]));
  match Dpm.heuristic_info dpm "xb" with
  | None -> Alcotest.fail "ADPM must expose heuristic data"
  | Some info ->
    Alcotest.(check int) "beta xb" 2 info.Heuristic_data.hi_beta;
    (match Domain.hull info.Heuristic_data.hi_feasible with
    | Some iv ->
      Alcotest.(check bool) "xb window [1,6]" true
        (Interval.lo iv >= 0.99 && Interval.hi iv <= 6.01)
    | None -> Alcotest.fail "xb window expected")

let test_adpm_object_version_bumped () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 4.) ]));
  match Dpm.find_object dpm "A" with
  | Some o ->
    Alcotest.(check string) "patch bumped" "1.0.1" (Design_object.version_string o)
  | None -> Alcotest.fail "object A"

let test_adpm_solved () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 4.) ]));
  Alcotest.(check bool) "not solved yet" false (Dpm.solved dpm);
  ignore (Dpm.apply dpm (synth "bob" 2 [ ("xb", 5.) ]));
  Alcotest.(check bool) "solved" true (Dpm.solved dpm);
  Alcotest.(check bool) "ground truth agrees" true (Dpm.ground_truth_solved dpm)

let test_adpm_notifications_routed () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  let r = Dpm.apply dpm (synth "alice" 1 [ ("xa", 9.5) ]) in
  (* bob must hear about the cross violation / window reductions *)
  Alcotest.(check bool) "bob notified" true
    (List.exists
       (fun n -> String.equal n.Notify.n_recipient "bob")
       r.Dpm.r_notifications)

let test_relaxed_feasible_mode_gate () =
  let dpm, _, _, _ = fixture Dpm.Conventional in
  Alcotest.(check bool) "conventional mode rejects" true
    (try
       ignore (Dpm.relaxed_feasible dpm "xa");
       false
     with Invalid_argument _ -> true)

(* Regression: ADPM verifications used the conventional eligibility rules
   to compute [r_skipped], so a constraint that propagation had just kept
   fresh could be reported skipped *and* point-checked in the same
   operation. Skipped must be the exact complement of the checked set. *)
let test_adpm_skipped_disjoint_from_checked () =
  let dpm, c_cross, c_a, _ = fixture Dpm.Adpm in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 4.) ]));
  (* xb unbound: cross cannot be point-checked; amin can *)
  let r =
    Dpm.apply dpm
      (Operator.verification ~designer:"leader" ~problem:0
         [ c_a.Constr.id; c_cross.Constr.id ])
  in
  Alcotest.(check (list int)) "only cross skipped" [ c_cross.Constr.id ]
    r.Dpm.r_skipped;
  Alcotest.(check bool) "checked constraint not reported skipped" true
    (not (List.mem c_a.Constr.id r.Dpm.r_skipped));
  Alcotest.(check int) "exactly the bound constraint evaluated" 1
    r.Dpm.r_evaluations;
  Alcotest.(check status) "amin point-checked satisfied" Constr.Satisfied
    (Dpm.known_status dpm c_a.Constr.id)

(* Regression: [Dpm.designers] accumulated with [acc @ [o]] (quadratic) —
   the rewrite must still return owners in first-seen problem order,
   without duplicates. *)
let test_designers_first_seen_order () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  let extra id name owner =
    Dpm.register_problem dpm ~parent:(Some 0)
      (Problem.make ~id ~name ~owner ())
  in
  extra 3 "A2" "alice";
  extra 4 "C" "carol";
  extra 5 "B2" "bob";
  Alcotest.(check (list string)) "first-seen order, deduplicated"
    [ "leader"; "alice"; "bob"; "carol" ]
    (Dpm.designers dpm)

(* {2 Conventional mode semantics} *)

let test_conventional_no_propagation () =
  let dpm, c_cross, _, _ = fixture Dpm.Conventional in
  let r = Dpm.apply dpm (synth "alice" 1 [ ("xa", 9.5) ]) in
  Alcotest.(check int) "no evaluations" 0 r.Dpm.r_evaluations;
  Alcotest.(check status) "no knowledge of conflict" Constr.Consistent
    (Dpm.known_status dpm c_cross.Constr.id);
  (* feasible subspaces stay at the initial ranges *)
  Alcotest.(check bool) "no feasibility info" true
    (Domain.equal
       (Network.feasible (Dpm.network dpm) "xb")
       (Network.initial_domain (Dpm.network dpm) "xb"))

let test_conventional_verification_and_staleness () =
  let dpm, _, c_a, _ = fixture Dpm.Conventional in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 0.5) ]));
  (* eligible: amin has bound args and was never verified *)
  let eligible = Dpm.eligible_verifications dpm ~designer:"alice" in
  Alcotest.(check (list int)) "amin eligible" [ c_a.Constr.id ] eligible;
  let r =
    Dpm.apply dpm
      (Operator.verification ~designer:"alice" ~problem:1 [ c_a.Constr.id ])
  in
  Alcotest.(check int) "one evaluation" 1 r.Dpm.r_evaluations;
  Alcotest.(check status) "violation found" Constr.Violated
    (Dpm.known_status dpm c_a.Constr.id);
  (* repair makes the verified status stale *)
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 2.) ]));
  Alcotest.(check status) "stale after reassignment" Constr.Consistent
    (Dpm.known_status dpm c_a.Constr.id);
  Alcotest.(check bool) "re-verification eligible" true
    (List.mem c_a.Constr.id (Dpm.eligible_verifications dpm ~designer:"alice"))

let test_conventional_cross_rule () =
  let dpm, c_cross, c_a, c_b = fixture Dpm.Conventional in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 6.) ]));
  ignore (Dpm.apply dpm (synth "bob" 2 [ ("xb", 6.) ]));
  (* both args bound, but subproblems are not Solved yet: cross blocked *)
  Alcotest.(check (list int)) "cross not yet eligible" []
    (Dpm.eligible_verifications dpm ~designer:"leader");
  ignore
    (Dpm.apply dpm (Operator.verification ~designer:"alice" ~problem:1 [ c_a.Constr.id ]));
  ignore
    (Dpm.apply dpm (Operator.verification ~designer:"bob" ~problem:2 [ c_b.Constr.id ]));
  Alcotest.(check bool) "integration ready" true (Dpm.integration_ready dpm);
  Alcotest.(check (list int)) "cross now eligible" [ c_cross.Constr.id ]
    (Dpm.eligible_verifications dpm ~designer:"leader");
  (* the integration check finds the conflict: 6 + 6 > 10 *)
  let r =
    Dpm.apply dpm
      (Operator.verification ~designer:"leader" ~problem:0 [ c_cross.Constr.id ])
  in
  Alcotest.(check (list int)) "conflict at integration" [ c_cross.Constr.id ]
    r.Dpm.r_newly_violated

let test_conventional_skipped_verifications () =
  let dpm, c_cross, _, _ = fixture Dpm.Conventional in
  (* xa unbound: the verification request is filtered *)
  let r =
    Dpm.apply dpm
      (Operator.verification ~designer:"leader" ~problem:0 [ c_cross.Constr.id ])
  in
  Alcotest.(check (list int)) "skipped" [ c_cross.Constr.id ] r.Dpm.r_skipped;
  Alcotest.(check int) "no evaluations" 0 r.Dpm.r_evaluations

let test_spin_counting () =
  let dpm, c_cross, c_a, c_b = fixture Dpm.Conventional in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 6.) ]));
  ignore (Dpm.apply dpm (synth "bob" 2 [ ("xb", 6.) ]));
  ignore (Dpm.apply dpm (Operator.verification ~designer:"alice" ~problem:1 [ c_a.Constr.id ]));
  ignore (Dpm.apply dpm (Operator.verification ~designer:"bob" ~problem:2 [ c_b.Constr.id ]));
  ignore (Dpm.apply dpm (Operator.verification ~designer:"leader" ~problem:0 [ c_cross.Constr.id ]));
  Alcotest.(check int) "no spins yet" 0 (Dpm.spin_count dpm);
  (* the repair reacting to the cross violation at integration is a spin *)
  let r =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"alice" ~problem:1
         ~motivated_by:[ c_cross.Constr.id ]
         [ ("xa", Value.Num 3.) ])
  in
  Alcotest.(check bool) "spin" true r.Dpm.r_spin;
  Alcotest.(check int) "spin counted" 1 (Dpm.spin_count dpm);
  (* a repair for an internal violation is not a spin *)
  let r2 =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"alice" ~problem:1
         ~motivated_by:[ c_a.Constr.id ]
         [ ("xa", Value.Num 4.) ])
  in
  Alcotest.(check bool) "not a spin" false r2.Dpm.r_spin

let test_spin_requires_integration_level () =
  let dpm, c_cross, _, _ = fixture Dpm.Adpm in
  (* xa bound, xb not: an early cross-violation repair is not a spin *)
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 9.5) ]));
  let r =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"alice" ~problem:1
         ~motivated_by:[ c_cross.Constr.id ]
         [ ("xa", Value.Num 5.) ])
  in
  Alcotest.(check bool) "early correction, not a spin" false r.Dpm.r_spin

let test_decompose_operation () =
  let net = Network.create () in
  Network.add_prop net "x" (Domain.continuous 0. 1.);
  let top = Problem.make ~id:0 ~name:"top" ~owner:"leader" () in
  let dpm = Dpm.create ~mode:Dpm.Adpm net ~objects:[] ~top in
  let spec =
    {
      Operator.sp_name = "child";
      sp_owner = "worker";
      sp_inputs = [];
      sp_outputs = [ "x" ];
      sp_constraints = [];
      sp_depends_on_names = [];
      sp_object = None;
    }
  in
  let spec2 = { spec with Operator.sp_name = "child2"; sp_depends_on_names = [ "child" ] } in
  ignore (Dpm.apply dpm (Operator.decompose ~designer:"leader" ~problem:0 [ spec; spec2 ]));
  Alcotest.(check int) "three problems" 3 (List.length (Dpm.problems dpm));
  let child2 =
    List.find (fun p -> p.Problem.pr_name = "child2") (Dpm.problems dpm)
  in
  Alcotest.(check bool) "ordering resolved" true
    (child2.Problem.pr_depends_on <> []);
  (* dependent problem is Waiting until its sibling solves *)
  Alcotest.(check bool) "waiting" true (child2.Problem.pr_status = Problem.Waiting)

let test_history_records () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 4.) ]));
  ignore (Dpm.apply dpm (synth "bob" 2 [ ("xb", 5.) ]));
  let h = Dpm.history dpm in
  Alcotest.(check int) "two entries" 2 (List.length h);
  Alcotest.(check (list int)) "indices chronological" [ 1; 2 ]
    (List.map (fun e -> e.Dpm.h_index) h)

(* {2 Heuristic_data} *)

let test_heuristic_mining () =
  let dpm, c_cross, _, c_b = fixture Dpm.Adpm in
  let net = Dpm.network dpm in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 9.5) ]));
  (* the early conflict lands on bmin, whose only argument is xb *)
  let info = Heuristic_data.mine_prop net "xb" in
  Alcotest.(check int) "alpha counts bmin violation" 1 info.Heuristic_data.hi_alpha;
  Alcotest.(check int) "beta" 2 info.Heuristic_data.hi_beta;
  Alcotest.(check bool) "bmin wants xb up" true
    (List.mem c_b.Constr.id info.Heuristic_data.hi_up_helps);
  Alcotest.(check bool) "repair votes up" true
    (Heuristic_data.preferred_direction info = `Up);
  let xa_info = Heuristic_data.mine_prop net "xa" in
  Alcotest.(check int) "alpha xa is 0 (its constraints hold)" 0
    xa_info.Heuristic_data.hi_alpha;
  Alcotest.(check bool) "cross wants xa down" true
    (List.mem c_cross.Constr.id xa_info.Heuristic_data.hi_down_helps);
  let all = Heuristic_data.mine net in
  Alcotest.(check int) "all numeric props mined" 3 (List.length all)

(* {2 Notify} *)

let test_notify_diff () =
  let subs = [ ("alice", [ "xa" ]); ("bob", [ "xb" ]) ] in
  let args_of = function 0 -> [ "xa"; "xb" ] | _ -> [] in
  let old_statuses _ = Constr.Consistent in
  let notifications =
    Notify.diff ~subscriptions:subs ~args_of ~old_statuses
      ~new_statuses:[ (0, Constr.Violated) ]
      ~old_feasible:(fun _ -> Domain.continuous 0. 10.)
      ~new_feasible:
        [ ("xa", Domain.continuous 0. 4.); ("xb", Domain.continuous 0. 10.) ]
  in
  let for_alice =
    List.find (fun n -> n.Notify.n_recipient = "alice") notifications
  in
  Alcotest.(check int) "alice gets violation + reduction" 2
    (List.length for_alice.Notify.n_events);
  let for_bob = List.find (fun n -> n.Notify.n_recipient = "bob") notifications in
  Alcotest.(check int) "bob only the violation" 1 (List.length for_bob.Notify.n_events)

let test_notify_empty_domain_event () =
  let notifications =
    Notify.diff
      ~subscriptions:[ ("d", [ "p" ]) ]
      ~args_of:(fun _ -> [])
      ~old_statuses:(fun _ -> Constr.Consistent)
      ~new_statuses:[]
      ~old_feasible:(fun _ -> Domain.continuous 0. 1.)
      ~new_feasible:[ ("p", Domain.Empty) ]
  in
  match notifications with
  | [ { Notify.n_events = [ Notify.Feasible_empty "p" ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected a Feasible_empty event"

let test_notify_resolution_event () =
  let notifications =
    Notify.diff
      ~subscriptions:[ ("d", [ "p" ]) ]
      ~args_of:(fun _ -> [ "p" ])
      ~old_statuses:(fun _ -> Constr.Violated)
      ~new_statuses:[ (0, Constr.Satisfied) ]
      ~old_feasible:(fun _ -> Domain.continuous 0. 1.)
      ~new_feasible:[]
  in
  match notifications with
  | [ { Notify.n_events = [ Notify.Violation_resolved 0 ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected a Violation_resolved event"

(* Direct contract tests of the routing primitive *)

let no_constraints ~old_status = function
  | (_ : int) -> old_status

let test_routed_widening_silent () =
  let events =
    Notify.routed_events
      ~args_of:(fun _ -> [])
      ~old_statuses:(no_constraints ~old_status:Constr.Consistent)
      ~new_statuses:[]
      ~old_feasible:(fun _ -> Domain.continuous 0. 1.)
      ~new_feasible:[ ("p", Domain.continuous 0. 5.) ]
  in
  Alcotest.(check int) "a widened subspace is not announced" 0
    (List.length events)

let test_routed_empty_precedence () =
  let events =
    Notify.routed_events
      ~args_of:(fun _ -> [])
      ~old_statuses:(no_constraints ~old_status:Constr.Consistent)
      ~new_statuses:[]
      ~old_feasible:(fun _ -> Domain.continuous 0. 1.)
      ~new_feasible:[ ("p", Domain.Empty) ]
  in
  match events with
  | [ ([ "p" ], Notify.Feasible_empty "p") ] -> ()
  | _ ->
    Alcotest.fail
      "an emptied domain must yield exactly Feasible_empty (never also a \
       reduction)"

let test_routed_resolution_requires_violated () =
  let route ~old_status ~new_status =
    Notify.routed_events
      ~args_of:(fun _ -> [ "p" ])
      ~old_statuses:(no_constraints ~old_status)
      ~new_statuses:[ (0, new_status) ]
      ~old_feasible:(fun _ -> Domain.continuous 0. 1.)
      ~new_feasible:[]
  in
  Alcotest.(check int) "Satisfied -> Consistent is silent" 0
    (List.length
       (route ~old_status:Constr.Satisfied ~new_status:Constr.Consistent));
  Alcotest.(check int) "Consistent -> Satisfied is silent" 0
    (List.length
       (route ~old_status:Constr.Consistent ~new_status:Constr.Satisfied));
  (match route ~old_status:Constr.Violated ~new_status:Constr.Consistent with
  | [ (_, Notify.Violation_resolved 0) ] -> ()
  | _ -> Alcotest.fail "Violated -> Consistent must resolve");
  match route ~old_status:Constr.Consistent ~new_status:Constr.Violated with
  | [ (_, Notify.Violation_detected 0) ] -> ()
  | _ -> Alcotest.fail "Consistent -> Violated must detect"

let test_notify_multi_recipient_split () =
  let subs = [ ("alice", [ "xa" ]); ("bob", [ "xb" ]); ("carol", [ "xc" ]) ] in
  let notifications =
    Notify.diff ~subscriptions:subs
      ~args_of:(fun _ -> [ "xa"; "xb" ])
      ~old_statuses:(fun _ -> Constr.Consistent)
      ~new_statuses:[ (0, Constr.Violated) ]
      ~old_feasible:(fun _ -> Domain.continuous 0. 1.)
      ~new_feasible:[]
  in
  let names = List.map (fun n -> n.Notify.n_recipient) notifications in
  Alcotest.(check (list string))
    "only subscribers of the touched properties" [ "alice"; "bob" ] names;
  List.iter
    (fun n ->
      match n.Notify.n_events with
      | [ Notify.Violation_detected 0 ] -> ()
      | _ -> Alcotest.fail "each recipient sees the one violation")
    notifications

(* The hash-set routing in [Notify.diff] against the original
   List.mem-scan formulation, on randomized subscription tables and event
   batches: same notifications, same order. *)
let notify_diff_matches_reference =
  let reference ~subscriptions ~args_of ~old_statuses ~new_statuses
      ~old_feasible ~new_feasible =
    let events =
      Notify.routed_events ~args_of ~old_statuses ~new_statuses ~old_feasible
        ~new_feasible
    in
    List.filter_map
      (fun (designer, props) ->
        let relevant =
          List.filter_map
            (fun (touched, event) ->
              if List.exists (fun p -> List.mem p props) touched then
                Some event
              else None)
            events
        in
        match relevant with
        | [] -> None
        | _ -> Some { Notify.n_recipient = designer; n_events = relevant })
      subscriptions
  in
  QCheck.Test.make ~name:"notify diff matches List.mem reference" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let prop i = Printf.sprintf "p%d" i in
      let nprops = 1 + Random.State.int st 6 in
      let random_props () =
        List.filter (fun _ -> Random.State.bool st)
          (List.init nprops prop)
      in
      let subscriptions =
        List.map
          (fun d -> (d, random_props ()))
          [ "ann"; "bob"; "carol"; "dave" ]
      in
      let ncids = Random.State.int st 5 in
      let args = Array.init ncids (fun _ -> random_props ()) in
      let args_of cid = args.(cid) in
      let statuses =
        [| Constr.Satisfied; Constr.Violated; Constr.Consistent |]
      in
      let pick_status () = statuses.(Random.State.int st 3) in
      let old_status = Array.init ncids (fun _ -> pick_status ()) in
      let old_statuses cid = old_status.(cid) in
      let new_statuses =
        List.filter_map
          (fun cid ->
            if Random.State.bool st then Some (cid, pick_status ()) else None)
          (List.init ncids Fun.id)
      in
      let old_feasible _ = Domain.continuous 0. 10. in
      let new_feasible =
        List.filter_map
          (fun i ->
            if Random.State.bool st then
              Some
                ( prop i,
                  if Random.State.int st 8 = 0 then Domain.Empty
                  else
                    Domain.continuous 0.
                      (float_of_int (1 + Random.State.int st 20)) )
            else None)
          (List.init nprops Fun.id)
      in
      Notify.diff ~subscriptions ~args_of ~old_statuses ~new_statuses
        ~old_feasible ~new_feasible
      = reference ~subscriptions ~args_of ~old_statuses ~new_statuses
          ~old_feasible ~new_feasible)

(* {2 Browser} *)

let test_browsers_render () =
  let dpm, _, _, _ = fixture Dpm.Adpm in
  ignore (Dpm.apply dpm (synth "alice" 1 [ ("xa", 4.) ]));
  let obj = Browser.object_browser dpm "A" in
  Alcotest.(check bool) "object browser mentions xa" true (contains obj "xa");
  Alcotest.(check bool) "version shown" true (contains obj "Version number");
  let props = Browser.property_browser dpm ~props:[ "xa"; "xb" ] in
  Alcotest.(check bool) "beta column" true (contains props "# c's");
  let conflicts = Browser.conflict_browser dpm ~props:[ "xa" ] in
  Alcotest.(check bool) "status pane" true (contains conflicts "CONSTRAINTS");
  Alcotest.(check bool) "properties pane" true (contains conflicts "PROPERTIES")

let suite =
  [
    ("object versioning", `Quick, test_object_versioning);
    ("problem links", `Quick, test_problem_links);
    ("problem properties", `Quick, test_problem_properties);
    ("dpm accessors", `Quick, test_dpm_accessors);
    ("subsystems and cross detection", `Quick, test_subsystems_and_cross);
    ("synthesis validation", `Quick, test_synthesis_validation);
    ("ADPM propagation after synthesis", `Quick, test_adpm_propagation_after_synthesis);
    ("ADPM heuristic info", `Quick, test_adpm_heuristic_info);
    ("ADPM object version bump", `Quick, test_adpm_object_version_bumped);
    ("ADPM solved detection", `Quick, test_adpm_solved);
    ("ADPM notifications routed", `Quick, test_adpm_notifications_routed);
    ("relaxed feasible mode gate", `Quick, test_relaxed_feasible_mode_gate);
    ("ADPM skipped disjoint from checked", `Quick,
     test_adpm_skipped_disjoint_from_checked);
    ("designers first-seen order", `Quick, test_designers_first_seen_order);
    ("conventional: no propagation", `Quick, test_conventional_no_propagation);
    ("conventional: verification & staleness", `Quick,
     test_conventional_verification_and_staleness);
    ("conventional: cross-subsystem rule", `Quick, test_conventional_cross_rule);
    ("conventional: ineligible requests skipped", `Quick,
     test_conventional_skipped_verifications);
    ("spin counting", `Quick, test_spin_counting);
    ("early corrections are not spins", `Quick, test_spin_requires_integration_level);
    ("decomposition operation", `Quick, test_decompose_operation);
    ("history records", `Quick, test_history_records);
    ("heuristic-support mining", `Quick, test_heuristic_mining);
    ("notification diff and routing", `Quick, test_notify_diff);
    ("notification: empty feasible set", `Quick, test_notify_empty_domain_event);
    ("notification: resolution", `Quick, test_notify_resolution_event);
    ("routing: widening is silent", `Quick, test_routed_widening_silent);
    ("routing: empty dominates reduction", `Quick, test_routed_empty_precedence);
    ("routing: resolution requires Violated", `Quick,
     test_routed_resolution_requires_violated);
    ("routing: multi-recipient split", `Quick, test_notify_multi_recipient_split);
    QCheck_alcotest.to_alcotest notify_diff_matches_reference;
    ("browser renderings", `Quick, test_browsers_render);
  ]
