(* Tests for Adpm_teamsim.Export (and the shared Adpm_util.Escape rules):
   CSV/JSON escaping round-trips on hostile strings, and a schema sanity
   check that summary_json is well-formed JSON with the documented fields
   (parsed with the trace library's hand-rolled reader — no external JSON
   dependency). *)

open Adpm_core
open Adpm_teamsim

let hostile_strings =
  [
    "plain";
    "";
    "comma, inside";
    "double \"quotes\"";
    "line\nbreak";
    "carriage\rreturn";
    "crlf\r\nline";
    "tab\tand control \x01 bytes";
    "trailing,\"mix\"\n";
    "non-ASCII: héhé — 設計 αβ";
  ]

(* Inverse of RFC 4180 quoting: strip the outer quotes and undouble. *)
let csv_unescape s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then begin
    let body = String.sub s 1 (n - 2) in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < String.length body do
      if body.[!i] = '"' then begin
        (* escaped quote: the doubling guarantees a second one follows *)
        Buffer.add_char buf '"';
        i := !i + 2
      end
      else begin
        Buffer.add_char buf body.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end
  else s

let test_csv_escape_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "csv round-trip %S" s)
        s
        (csv_unescape (Export.csv_escape s)))
    hostile_strings

let test_csv_escape_is_field_safe () =
  List.iter
    (fun s ->
      let escaped = Export.csv_escape s in
      let quoted = String.length escaped >= 2 && escaped.[0] = '"' in
      if not quoted then begin
        Alcotest.(check bool) "unquoted field has no comma" false
          (String.contains escaped ',');
        Alcotest.(check bool) "unquoted field has no newline" false
          (String.contains escaped '\n');
        Alcotest.(check bool) "unquoted field has no carriage return" false
          (String.contains escaped '\r')
      end)
    hostile_strings

(* JSON escaping round-trips through an actual JSON parser: wrap the
   escaped body in quotes and read it back. *)
let test_json_escape_roundtrip () =
  let module Json = Adpm_trace.Json in
  List.iter
    (fun s ->
      match Json.parse ("\"" ^ Export.json_escape s ^ "\"") with
      | Ok (Json.Str s') ->
        Alcotest.(check string) (Printf.sprintf "json round-trip %S" s) s s'
      | Ok _ -> Alcotest.failf "%S did not parse as a string" s
      | Error e -> Alcotest.failf "%S does not re-parse: %s" s e)
    hostile_strings

let sample_summary () =
  let cfg = Config.default ~mode:Dpm.Adpm ~seed:7 in
  let cfg = { cfg with Config.max_ops = 200 } in
  (Engine.run cfg Adpm_scenarios.Lna.scenario).Engine.o_summary

let test_summary_json_schema () =
  let module Json = Adpm_trace.Json in
  let summary = sample_summary () in
  match Json.parse (Export.summary_json summary) with
  | Error e -> Alcotest.failf "summary_json is not valid JSON: %s" e
  | Ok j ->
    let str name = Option.bind (Json.member name j) Json.to_str in
    let int name = Option.bind (Json.member name j) Json.to_int in
    Alcotest.(check (option string)) "scenario" (Some "lna") (str "scenario");
    Alcotest.(check (option string)) "mode" (Some "ADPM") (str "mode");
    Alcotest.(check (option int)) "seed" (Some 7) (int "seed");
    Alcotest.(check (option int)) "operations"
      (Some summary.Metrics.s_operations)
      (int "operations");
    Alcotest.(check (option int)) "evaluations"
      (Some summary.Metrics.s_evaluations)
      (int "evaluations");
    Alcotest.(check (option bool)) "completed"
      (Some summary.Metrics.s_completed)
      (Option.bind (Json.member "completed" j) Json.to_bool);
    let profile =
      Option.bind (Json.member "profile" j) Json.to_list
      |> Option.value ~default:[]
    in
    Alcotest.(check int) "one profile entry per record"
      (List.length summary.Metrics.s_profile)
      (List.length profile);
    List.iter
      (fun entry ->
        List.iter
          (fun field ->
            Alcotest.(check bool)
              (Printf.sprintf "profile entry has %s" field)
              true
              (Json.member field entry <> None))
          [ "op"; "designer"; "kind"; "evaluations"; "new_violations";
            "known_violations"; "spin" ])
      profile

let test_runs_csv_shape () =
  let summary = sample_summary () in
  let csv = Export.runs_csv [ summary; summary ] in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "header + one line per run" 3 (List.length lines);
  let columns l = List.length (String.split_on_char ',' l) in
  List.iter
    (fun l -> Alcotest.(check int) "column count" (columns (List.hd lines)) (columns l))
    lines

let suite =
  [
    Alcotest.test_case "csv escape round-trip" `Quick test_csv_escape_roundtrip;
    Alcotest.test_case "csv escape field safety" `Quick
      test_csv_escape_is_field_safe;
    Alcotest.test_case "json escape round-trip" `Quick
      test_json_escape_roundtrip;
    Alcotest.test_case "summary_json schema" `Quick test_summary_json_schema;
    Alcotest.test_case "runs_csv shape" `Quick test_runs_csv_shape;
  ]
