bench/main.mli:
