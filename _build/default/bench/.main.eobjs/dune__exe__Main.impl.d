bench/main.ml: Adpm_experiments Exp_ablation Exp_fig10 Exp_fig234 Exp_fig7 Exp_fig8 Exp_fig9 Exp_scaling Microbench Printf String Sys
