(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Figs. 2-4 walkthrough, Fig. 7 profiles, Fig. 8
   statistics window, Fig. 9 performance/penalty aggregates, Fig. 10
   tightness sweep, plus the heuristic ablations), then runs bechamel
   micro-benchmarks of the underlying engines.

   Environment knobs:
     ADPM_BENCH_SEEDS  seeds per Fig. 9 cell (default 60, as in the paper)
     ADPM_BENCH_FAST   set to shrink every experiment (CI smoke mode) *)

open Adpm_experiments

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let fast = Sys.getenv_opt "ADPM_BENCH_FAST" <> None

let section title = Printf.printf "\n%s\n%s\n\n" title (String.make 72 '=')

let () =
  let fig9_seeds = getenv_int "ADPM_BENCH_SEEDS" (if fast then 10 else 60) in
  let fig7_seeds = if fast then 5 else 20 in
  let fig10_seeds = if fast then 3 else 10 in
  let ablation_seeds = if fast then 5 else 15 in
  let ablation_instances = if fast then 10 else 30 in

  section "Figures 2-4: Section 2.4 walkthrough";
  print_string (Exp_fig234.render (Exp_fig234.run ()));

  section "Figure 7: per-operation profiles (simplified case)";
  print_string (Exp_fig7.render (Exp_fig7.run ~seeds:fig7_seeds ()));

  section "Figure 8: design process statistics window";
  print_string (Exp_fig8.render (Exp_fig8.run ()));

  section "Figure 9: performance and computational penalty";
  print_string (Exp_fig9.render (Exp_fig9.run ~seeds:fig9_seeds ()));

  section "Figure 10: specification-tightness sweep";
  print_string (Exp_fig10.render (Exp_fig10.run ~seeds:fig10_seeds ()));

  section "Ablations: ADPM heuristics, CSP orderings, DCM consistency";
  print_string
    (Exp_ablation.render
       (Exp_ablation.run ~seeds:ablation_seeds ~instances:ablation_instances ()));

  section "Scaling study (extension): hardness vs acceleration and penalty";
  print_string (Exp_scaling.render (Exp_scaling.run ~seeds:(if fast then 3 else 8) ()));

  section "Micro-benchmarks (bechamel)";
  Microbench.run ~fast ()
