(** Property values.

    The paper allows property values to be "numbers, strings, tuples, or
    complex descriptions" (Section 2.1). Constraint arithmetic only involves
    numbers; symbolic values carry design metadata such as abstraction
    levels. *)

type t = Num of float | Sym of string

val num : t -> float option
val sym : t -> string option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
