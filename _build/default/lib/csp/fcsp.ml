type t = {
  nvars : int;
  domains : int list array;
  constraints : (int * int * (int -> int -> bool)) list;
}

let make ~nvars ~domains ~constraints =
  if Array.length domains <> nvars then
    invalid_arg "Fcsp.make: domains array length mismatch";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= nvars || j < 0 || j >= nvars || i = j then
        invalid_arg "Fcsp.make: bad constraint scope")
    constraints;
  { nvars; domains = Array.copy domains; constraints }

let degree csp v =
  List.length (List.filter (fun (i, j, _) -> i = v || j = v) csp.constraints)

let neighbours csp v =
  let ns =
    List.filter_map
      (fun (i, j, _) ->
        if i = v then Some j else if j = v then Some i else None)
      csp.constraints
  in
  List.sort_uniq compare ns

let consistent_assignment csp assignment =
  List.for_all
    (fun (i, j, ok) -> ok assignment.(i) assignment.(j))
    csp.constraints

type ac3_result = Consistent of int list array | Inconsistent

(* Directed arcs: for constraint (i, j, ok) we revise i against j and j
   against i. *)
let ac3 csp =
  let domains = Array.copy csp.domains in
  let arcs =
    List.concat_map
      (fun (i, j, ok) -> [ (i, j, ok); (j, i, fun a b -> ok b a) ])
      csp.constraints
  in
  let queue = Queue.create () in
  List.iter (fun arc -> Queue.add arc queue) arcs;
  let revisions = ref 0 in
  let wiped = ref false in
  while (not !wiped) && not (Queue.is_empty queue) do
    let i, j, ok = Queue.pop queue in
    incr revisions;
    let supported vi = List.exists (fun vj -> ok vi vj) domains.(j) in
    let kept = List.filter supported domains.(i) in
    if List.length kept < List.length domains.(i) then begin
      domains.(i) <- kept;
      if kept = [] then wiped := true
      else
        List.iter
          (fun (a, b, okab) ->
            if b = i && a <> j then Queue.add (a, b, okab) queue;
            if a = i && b <> j then
              Queue.add (b, a, (fun x y -> okab y x)) queue)
          csp.constraints
    end
  done;
  if !wiped then (Inconsistent, !revisions) else (Consistent domains, !revisions)

let solutions ?(limit = max_int) csp =
  let found = ref [] in
  let count = ref 0 in
  let assignment = Array.make csp.nvars min_int in
  let compatible v value =
    List.for_all
      (fun (i, j, ok) ->
        if i = v && j < v then ok value assignment.(j)
        else if j = v && i < v then ok assignment.(i) value
        else true)
      csp.constraints
  in
  let rec go v =
    if !count >= limit then ()
    else if v = csp.nvars then begin
      found := Array.copy assignment :: !found;
      incr count
    end
    else
      List.iter
        (fun value ->
          if !count < limit && compatible v value then begin
            assignment.(v) <- value;
            go (v + 1)
          end)
        csp.domains.(v)
  in
  go 0;
  List.rev !found
