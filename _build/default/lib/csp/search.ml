open Adpm_util

type heuristic =
  | Lexicographic
  | Random_order
  | Min_domain
  | Max_degree
  | Min_domain_over_degree

let heuristic_name = function
  | Lexicographic -> "lex"
  | Random_order -> "random"
  | Min_domain -> "min-domain"
  | Max_degree -> "max-degree"
  | Min_domain_over_degree -> "dom/deg"

let all_heuristics =
  [ Lexicographic; Random_order; Min_domain; Max_degree; Min_domain_over_degree ]

type inference = No_inference | Forward_check | Mac

let inference_name = function
  | No_inference -> "backtracking"
  | Forward_check -> "forward checking"
  | Mac -> "MAC"

type stats = {
  solution : int array option;
  nodes : int;
  backtracks : int;
  checks : int;
}

let solve ?rng ?(inference = Forward_check) ~heuristic (csp : Fcsp.t) =
  let rng = match rng with Some r -> r | None -> Rng.create 0 in
  let n = csp.Fcsp.nvars in
  let domains = Array.map (fun d -> ref d) csp.Fcsp.domains in
  let assigned = Array.make n false in
  let assignment = Array.make n min_int in
  let nodes = ref 0 and backtracks = ref 0 and checks = ref 0 in
  let static_order =
    match heuristic with
    | Random_order -> Array.of_list (Rng.shuffle rng (List.init n Fun.id))
    | Lexicographic | Min_domain | Max_degree | Min_domain_over_degree ->
      Array.init n Fun.id
  in
  let degree = Array.init n (fun v -> Fcsp.degree csp v) in
  let pick_var () =
    let candidates = List.filter (fun v -> not assigned.(v)) (List.init n Fun.id) in
    match candidates with
    | [] -> None
    | _ ->
      let score v =
        match heuristic with
        | Lexicographic -> float_of_int v
        | Random_order ->
          let pos = ref 0 in
          Array.iteri (fun i x -> if x = v then pos := i) static_order;
          float_of_int !pos
        | Min_domain -> float_of_int (List.length !(domains.(v)))
        | Max_degree -> -.float_of_int degree.(v)
        | Min_domain_over_degree ->
          float_of_int (List.length !(domains.(v)))
          /. float_of_int (max 1 degree.(v))
      in
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> Some v
          | Some b -> if score v < score b then Some v else acc)
        None candidates
  in
  (* No_inference: check the new assignment against already-assigned
     neighbours only. *)
  let consistent_with_past v value =
    List.for_all
      (fun (i, j, test) ->
        if i = v && assigned.(j) then begin
          incr checks;
          test value assignment.(j)
        end
        else if j = v && assigned.(i) then begin
          incr checks;
          test assignment.(i) value
        end
        else true)
      csp.Fcsp.constraints
  in
  (* Forward checking: prune unassigned neighbours of [v]; returns the undo
     list or None on wipeout. *)
  let forward_check v value =
    let undo = ref [] in
    let ok = ref true in
    List.iter
      (fun (i, j, test) ->
        if !ok then begin
          let neighbour, check =
            if i = v then (j, fun w -> test value w)
            else if j = v then (i, fun w -> test w value)
            else (-1, fun _ -> true)
          in
          if neighbour >= 0 && not assigned.(neighbour) then begin
            let before = !(domains.(neighbour)) in
            let kept =
              List.filter
                (fun w ->
                  incr checks;
                  check w)
                before
            in
            if List.length kept < List.length before then begin
              undo := (neighbour, before) :: !undo;
              domains.(neighbour) := kept;
              if kept = [] then ok := false
            end
          end
        end)
      csp.Fcsp.constraints;
    if !ok then Some !undo
    else begin
      List.iter (fun (w, before) -> domains.(w) := before) !undo;
      None
    end
  in
  (* MAC: after the assignment, enforce arc consistency on the current
     domains (assigned variables are singletons); returns the undo list or
     None on wipeout. *)
  let maintain_arc_consistency () =
    let snapshot = Array.map (fun d -> !d) domains in
    let queue = Queue.create () in
    List.iter
      (fun (i, j, test) ->
        Queue.add (i, j, test) queue;
        Queue.add (j, i, fun a b -> test b a) queue)
      csp.Fcsp.constraints;
    let wiped = ref false in
    while (not !wiped) && not (Queue.is_empty queue) do
      let i, j, test = Queue.pop queue in
      let supported vi =
        List.exists
          (fun vj ->
            incr checks;
            test vi vj)
          !(domains.(j))
      in
      let kept = List.filter supported !(domains.(i)) in
      if List.length kept < List.length !(domains.(i)) then begin
        domains.(i) := kept;
        if kept = [] then wiped := true
        else
          List.iter
            (fun (a, b, t) ->
              if b = i && a <> j then Queue.add (a, b, t) queue;
              if a = i && b <> j then Queue.add (b, a, (fun x y -> t y x)) queue)
            csp.Fcsp.constraints
      end
    done;
    let undo =
      Array.to_list
        (Array.mapi (fun v before -> (v, before)) snapshot)
    in
    if !wiped then begin
      List.iter (fun (v, before) -> domains.(v) := before) undo;
      None
    end
    else Some undo
  in
  let infer v value =
    match inference with
    | No_inference ->
      if consistent_with_past v value then Some [] else None
    | Forward_check -> forward_check v value
    | Mac ->
      domains.(v) := [ value ];
      maintain_arc_consistency ()
  in
  let rec go depth =
    if depth = n then true
    else
      match pick_var () with
      | None -> true
      | Some v ->
        let saved_domain = !(domains.(v)) in
        let try_value value =
          incr nodes;
          assignment.(v) <- value;
          assigned.(v) <- true;
          match infer v value with
          | Some undo ->
            if go (depth + 1) then true
            else begin
              List.iter (fun (w, before) -> domains.(w) := before) undo;
              domains.(v) := saved_domain;
              assigned.(v) <- false;
              incr backtracks;
              false
            end
          | None ->
            domains.(v) := saved_domain;
            assigned.(v) <- false;
            incr backtracks;
            false
        in
        List.exists try_value saved_domain
  in
  let found = go 0 in
  {
    solution = (if found then Some (Array.copy assignment) else None);
    nodes = !nodes;
    backtracks = !backtracks;
    checks = !checks;
  }

let random_csp rng ~nvars ~domain_size ~density ~tightness =
  let domains = Array.make nvars (List.init domain_size Fun.id) in
  let constraints = ref [] in
  for i = 0 to nvars - 2 do
    for j = i + 1 to nvars - 1 do
      if Rng.float rng 1.0 < density then begin
        let forbidden = Hashtbl.create 16 in
        for vi = 0 to domain_size - 1 do
          for vj = 0 to domain_size - 1 do
            if Rng.float rng 1.0 < tightness then
              Hashtbl.replace forbidden (vi, vj) ()
          done
        done;
        let ok vi vj = not (Hashtbl.mem forbidden (vi, vj)) in
        constraints := (i, j, ok) :: !constraints
      end
    done
  done;
  Fcsp.make ~nvars ~domains ~constraints:!constraints
