type t = Num of float | Sym of string

let num = function Num x -> Some x | Sym _ -> None
let sym = function Sym s -> Some s | Num _ -> None

let equal a b =
  match (a, b) with
  | Num x, Num y -> x = y
  | Sym x, Sym y -> String.equal x y
  | (Num _ | Sym _), _ -> false

let pp ppf = function
  | Num x -> Format.fprintf ppf "%g" x
  | Sym s -> Format.pp_print_string ppf s

let to_string v = Format.asprintf "%a" pp v
