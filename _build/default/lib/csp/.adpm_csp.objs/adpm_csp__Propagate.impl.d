lib/csp/propagate.ml: Adpm_expr Adpm_interval Constr Domain Float Hashtbl Hc4 Interval List Network Queue
