lib/csp/constr.mli: Adpm_expr Adpm_interval Expr Format Interval
