lib/csp/search.mli: Adpm_util Fcsp Rng
