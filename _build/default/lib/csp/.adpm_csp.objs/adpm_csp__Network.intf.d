lib/csp/network.mli: Adpm_expr Adpm_interval Constr Domain Expr Format Interval Monotone Value
