lib/csp/value.mli: Format
