lib/csp/constr.ml: Adpm_expr Adpm_interval Expr Float Format Interval List
