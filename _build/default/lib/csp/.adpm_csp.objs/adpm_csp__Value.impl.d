lib/csp/value.ml: Format String
