lib/csp/search.ml: Adpm_util Array Fcsp Fun Hashtbl List Queue Rng
