lib/csp/network.ml: Adpm_expr Adpm_interval Constr Domain Expr Format Hashtbl Interval List Monotone Printf Value
