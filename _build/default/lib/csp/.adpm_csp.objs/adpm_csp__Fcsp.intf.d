lib/csp/fcsp.mli:
