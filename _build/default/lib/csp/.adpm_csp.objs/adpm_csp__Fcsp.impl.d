lib/csp/fcsp.ml: Array List Queue
