lib/csp/propagate.mli: Adpm_interval Constr Domain Network
