(** Finite-domain CSPs and arc consistency.

    The constraint-satisfaction substrate behind the heuristics the paper
    imports from the CSP literature (Bitner & Reingold's backtracking,
    Freuder & Quinn's stable-set variable ordering, Kumar's survey). The
    heuristic-ablation experiment uses this module together with
    {!Search} to demonstrate, on random binary CSPs, the search-acceleration
    claims that motivate ADPM's guidance. *)

type t = {
  nvars : int;
  domains : int list array;  (** candidate values per variable *)
  constraints : (int * int * (int -> int -> bool)) list;
      (** [(i, j, ok)]: values [vi] for variable [i] and [vj] for [j] are
          compatible iff [ok vi vj]. Constraints are symmetric in intent;
          store each pair once. *)
}

val make :
  nvars:int ->
  domains:int list array ->
  constraints:(int * int * (int -> int -> bool)) list ->
  t
(** @raise Invalid_argument on arity mismatches or out-of-range variable
    indices. *)

val degree : t -> int -> int
(** Number of constraints involving a variable. *)

val neighbours : t -> int -> int list
(** Distinct variables sharing a constraint with the given one. *)

val consistent_assignment : t -> int array -> bool
(** Does a full assignment satisfy every constraint? *)

type ac3_result = Consistent of int list array | Inconsistent

val ac3 : t -> ac3_result * int
(** Enforce arc consistency; returns the reduced domains (or
    [Inconsistent] when a domain wipes out) and the number of arc
    revisions performed. *)

val solutions : ?limit:int -> t -> int array list
(** Exhaustive enumeration (test oracle; exponential — only for small
    instances). [limit] stops early. *)
