(** Backtracking search with constraint-based variable-ordering heuristics.

    Demonstrates, on finite CSPs, the premise the paper builds on:
    constraint-based search heuristics (smallest-domain-first,
    most-constrained-first) substantially reduce search effort. The
    heuristic-ablation benchmark compares these orderings on random binary
    CSPs — the classical testbed of the cited CSP literature. *)

open Adpm_util

type heuristic =
  | Lexicographic  (** static order: the uninformed baseline *)
  | Random_order  (** random static order *)
  | Min_domain
      (** smallest remaining domain first — the paper's "smallest feasible
          subspace" heuristic (Section 2.3.1) *)
  | Max_degree
      (** most constraints first — the paper's beta heuristic
          (Section 2.3.2) *)
  | Min_domain_over_degree  (** dom/deg: the combined heuristic *)

val heuristic_name : heuristic -> string
val all_heuristics : heuristic list

type inference =
  | No_inference  (** chronological backtracking, checks against past vars *)
  | Forward_check  (** prune future neighbours of the assigned variable *)
  | Mac  (** maintain arc consistency (AC-3) after every assignment *)

val inference_name : inference -> string

type stats = {
  solution : int array option;
  nodes : int;  (** assignments attempted *)
  backtracks : int;
  checks : int;  (** constraint checks (the analogue of evaluations) *)
}

val solve :
  ?rng:Rng.t -> ?inference:inference -> heuristic:heuristic -> Fcsp.t -> stats
(** Backtracking search. [inference] defaults to [Forward_check]; [rng]
    (default seed 0) feeds [Random_order] and breaks ties. *)

val random_csp :
  Rng.t ->
  nvars:int ->
  domain_size:int ->
  density:float ->
  tightness:float ->
  Fcsp.t
(** Model-B style random binary CSP: each of the [nvars*(nvars-1)/2]
    variable pairs is constrained with probability [density]; a constrained
    pair forbids each value combination with probability [tightness]. *)
