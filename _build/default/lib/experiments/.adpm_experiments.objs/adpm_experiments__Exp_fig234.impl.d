lib/experiments/exp_fig234.ml: Adpm_core Adpm_csp Adpm_interval Adpm_scenarios Browser Buffer Constr Domain Dpm Interval List Lna Network Operator Printf String Value
