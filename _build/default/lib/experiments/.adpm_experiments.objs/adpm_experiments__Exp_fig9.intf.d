lib/experiments/exp_fig9.mli: Adpm_teamsim Report
