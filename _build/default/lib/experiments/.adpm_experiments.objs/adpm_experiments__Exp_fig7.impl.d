lib/experiments/exp_fig7.ml: Adpm_core Adpm_scenarios Adpm_teamsim Adpm_util Array Ascii_chart Buffer Config Dpm Engine List Metrics Printf Report Simple
