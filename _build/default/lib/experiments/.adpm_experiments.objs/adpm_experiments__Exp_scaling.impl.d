lib/experiments/exp_scaling.ml: Adpm_core Adpm_scenarios Adpm_teamsim Adpm_util Buffer Config Dpm Engine Generated List Metrics Printf Stats_acc Table
