lib/experiments/exp_ablation.mli: Adpm_csp
