lib/experiments/exp_fig10.ml: Adpm_core Adpm_scenarios Adpm_teamsim Adpm_util Ascii_chart Buffer Config Dpm Engine List Metrics Printf Receiver Scenario Stats_acc Table
