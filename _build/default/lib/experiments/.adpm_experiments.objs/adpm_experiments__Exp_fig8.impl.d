lib/experiments/exp_fig8.ml: Adpm_core Adpm_csp Adpm_scenarios Adpm_teamsim Adpm_util Ascii_chart Buffer Config Dpm Engine List Metrics Network Printf Receiver Table
