lib/experiments/exp_fig8.mli: Adpm_core
