lib/experiments/exp_fig234.mli:
