lib/experiments/exp_fig9.ml: Adpm_core Adpm_scenarios Adpm_teamsim Adpm_util Ascii_chart Buffer Config Dpm Engine List Printf Receiver Report Sensor Stats_acc
