open Adpm_interval
open Adpm_csp
open Adpm_core
open Adpm_scenarios

type result = {
  freq_ind_window : float * float;
  diff_pair_window : float * float;
  beta_diff_pair : int;
  alpha_after_conflicts : int;
  violations_after_gain_choice : string list;
  violations_after_tightening : string list;
  resolved_by_resize : string list;
  remaining_violations : int;
  fig2_text : string;
  fig3_text : string;
  fig4_text : string;
}

let window net prop =
  match Domain.hull (Network.feasible net prop) with
  | Some iv -> (Interval.lo iv, Interval.hi iv)
  | None -> (nan, nan)

let constraint_names net cids =
  List.map (fun cid -> (Network.find_constraint net cid).Constr.name) cids

let run () =
  let dpm = Lna.build ~adjustable_requirements:true () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  let top = 0 and analog = 1 and filter = 2 in
  (* the device engineer adjusts the beam length to 13 um *)
  ignore
    (Dpm.apply dpm
       (Operator.synthesis ~designer:"device" ~problem:filter
          [ (Lna.beam_length, Value.Num 13.) ]));
  let freq_ind_window = window net Lna.freq_ind in
  let diff_pair_window = window net Lna.diff_pair_w in
  let fig2_text = Browser.object_browser dpm "LNA+Mixer" in
  let fig3_text =
    Browser.property_browser dpm ~props:[ Lna.diff_pair_w; Lna.freq_ind ]
  in
  let beta_diff_pair = Network.beta net Lna.diff_pair_w in
  (* the circuit designer chooses the inductor, then the smallest
     potentially feasible pair width (2.5 um reduces power consumption) *)
  ignore
    (Dpm.apply dpm
       (Operator.synthesis ~designer:"circuit" ~problem:analog
          [ (Lna.freq_ind, Value.Num 0.2) ]));
  let r_gain =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"circuit" ~problem:analog
         [ (Lna.diff_pair_w, Value.Num 2.5) ])
  in
  (* the team leader tightens the input impedance requirement to 40 Ohm *)
  let r_zin =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"leader" ~problem:top
         [ (Lna.min_zin, Value.Num 40.) ])
  in
  let alpha_after_conflicts = Network.alpha net Lna.diff_pair_w in
  let fig4_text =
    Browser.conflict_browser dpm
      ~props:[ Lna.diff_pair_w; Lna.freq_ind; Lna.min_zin ]
  in
  (* larger transistors improve gain and impedance matching: one re-sizing *)
  let r_fix =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"circuit" ~problem:analog
         ~motivated_by:(Dpm.known_violations dpm)
         [ (Lna.diff_pair_w, Value.Num 3.5) ])
  in
  {
    freq_ind_window;
    diff_pair_window;
    beta_diff_pair;
    alpha_after_conflicts;
    violations_after_gain_choice = constraint_names net r_gain.Dpm.r_newly_violated;
    violations_after_tightening = constraint_names net r_zin.Dpm.r_newly_violated;
    resolved_by_resize = constraint_names net r_fix.Dpm.r_resolved;
    remaining_violations = List.length (Dpm.known_violations dpm);
    fig2_text;
    fig3_text;
    fig4_text;
  }

let render r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Figures 2-4: Section 2.4 walkthrough (LNA + MEMS filter) ===\n\n";
  add "Fig. 2 — object browser after beam length := 13 um:\n%s\n" r.fig2_text;
  add "  paper:    Freq-ind {0.174255, 0.500000}   Diff-pair-W {2.500000, 3.698225}\n";
  add "  measured: Freq-ind {%.6f, %.6f}   Diff-pair-W {%.6f, %.6f}\n\n"
    (fst r.freq_ind_window) (snd r.freq_ind_window)
    (fst r.diff_pair_window) (snd r.diff_pair_window);
  add "Fig. 3 — constraint/property browser:\n%s\n" r.fig3_text;
  add "  paper: beta(Diff-pair-W) = 3; measured: %d\n\n" r.beta_diff_pair;
  add "Violations after W := 2.5 um: %s (paper: gain requirement)\n"
    (String.concat ", " r.violations_after_gain_choice);
  add "Violations after Zin spec := 40 Ohm: %s (paper: impedance)\n\n"
    (String.concat ", " r.violations_after_tightening);
  add "Fig. 4 — conflict resolution view:\n%s\n" r.fig4_text;
  add "  paper: alpha(Diff-pair-W) = 2; measured: %d\n\n" r.alpha_after_conflicts;
  add "Re-sizing W := 3.5 um resolved: %s; remaining violations: %d\n"
    (String.concat ", " r.resolved_by_resize)
    r.remaining_violations;
  add "  paper: both violations fixed with a single iteration\n";
  Buffer.contents buf
