open Adpm_util
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

type row = {
  op : int;
  designer : string;
  kind : string;
  violations : int;
  cumulative_evaluations : int;
  cumulative_spins : int;
}

type result = {
  constraints : int;
  properties : int;
  rows : row list;
  completed : bool;
}

let run ?(mode = Dpm.Adpm) ?(seed = 1) () =
  let cfg = Config.default ~mode ~seed in
  let outcome = Engine.run cfg Receiver.scenario in
  let net = Dpm.network outcome.Engine.o_dpm in
  let evals = ref 0 and spins = ref 0 in
  let rows =
    List.map
      (fun r ->
        evals := !evals + r.Metrics.m_evaluations;
        if r.Metrics.m_spin then incr spins;
        {
          op = r.Metrics.m_index;
          designer = r.Metrics.m_designer;
          kind = r.Metrics.m_kind;
          violations = r.Metrics.m_known_violations;
          cumulative_evaluations = !evals;
          cumulative_spins = !spins;
        })
      outcome.Engine.o_summary.Metrics.s_profile
  in
  {
    constraints = Network.constraint_count net;
    properties = List.length (Network.prop_names net);
    rows;
    completed = outcome.Engine.o_summary.Metrics.s_completed;
  }

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "=== Figure 8: design process statistics window (receiver, one run) ===\n\n";
  add "Number of properties:  %d\n" r.properties;
  add "Number of constraints: %d\n\n" r.constraints;
  let table =
    Table.create
      [ "Op"; "Designer"; "Kind"; "Violations"; "Cum. evals"; "Cum. spins" ]
  in
  Table.set_align table
    [ Table.Right; Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun row ->
      Table.add_row table
        [
          string_of_int row.op; row.designer; row.kind;
          string_of_int row.violations;
          string_of_int row.cumulative_evaluations;
          string_of_int row.cumulative_spins;
        ])
    r.rows;
  add "%s\n" (Table.render table);
  let points f = List.map (fun row -> (float_of_int row.op, f row)) r.rows in
  add "%s\n"
    (Ascii_chart.line_chart ~title:"statistics over operations"
       ~x_label:"operation number"
       [
         { Ascii_chart.label = "known violations";
           points = points (fun row -> float_of_int row.violations) };
         { Ascii_chart.label = "cumulative spins";
           points = points (fun row -> float_of_int row.cumulative_spins) };
       ]);
  add "run %s\n" (if r.completed then "completed" else "DID NOT COMPLETE");
  Buffer.contents buf
