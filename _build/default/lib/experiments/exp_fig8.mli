(** Figure 8: the design-process statistics window.

    One ADPM run of the receiver case, with the key statistics TeamSim
    displays dynamically: number of constraints, number of (known)
    violations, cumulative constraint evaluations, and cumulative design
    spins, as a function of the operation number. *)

type row = {
  op : int;
  designer : string;
  kind : string;
  violations : int;  (** known violations after the operation *)
  cumulative_evaluations : int;
  cumulative_spins : int;
}

type result = {
  constraints : int;
  properties : int;
  rows : row list;
  completed : bool;
}

val run : ?mode:Adpm_core.Dpm.mode -> ?seed:int -> unit -> result
(** Default: ADPM mode, seed 1. *)

val render : result -> string
