(** Figures 2, 3 and 4: the Section 2.4 walkthrough.

    Scripts the paper's narrative on the LNA + MEMS-filter case: the device
    engineer sets the beam length to 13 um; the circuit designer inspects
    the object browser (Fig. 2) and the constraint/property browser
    (Fig. 3), chooses the load inductor (0.2 uH) and the smallest
    potentially feasible differential-pair width (2.5 um); the gain
    requirement is violated, the leader tightens the input-impedance
    requirement to 40 Ohm adding a second violation (Fig. 4); guided by the
    connected-violations count, the designer re-sizes the pair to 3.5 um,
    fixing both violations with a single operation. *)

type result = {
  freq_ind_window : float * float;
      (** propagated feasible window of the frequency inductor; the paper
          reports (0.174255, 0.5) *)
  diff_pair_window : float * float;
      (** propagated window of the differential pair width; the paper
          reports (2.5, 3.698225) *)
  beta_diff_pair : int;  (** paper: 3 *)
  alpha_after_conflicts : int;  (** paper: 2 *)
  violations_after_gain_choice : string list;
  violations_after_tightening : string list;
  resolved_by_resize : string list;
  remaining_violations : int;  (** paper: 0 — both fixed in one iteration *)
  fig2_text : string;
  fig3_text : string;
  fig4_text : string;
}

val run : unit -> result
val render : result -> string
