lib/util/table.mli:
