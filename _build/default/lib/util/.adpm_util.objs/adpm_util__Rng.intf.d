lib/util/rng.mli:
