type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  ncols : int;
  mutable aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title headers =
  let ncols = List.length headers in
  { title; headers; ncols; aligns = Array.make ncols Left; rows = [] }

let set_align t aligns =
  List.iteri (fun i a -> if i < t.ncols then t.aligns.(i) <- a) aligns

let normalize ncols cells =
  let n = List.length cells in
  if n = ncols then cells
  else if n < ncols then cells @ List.init (ncols - n) (fun _ -> "")
  else List.filteri (fun i _ -> i < ncols) cells

let add_row t cells = t.rows <- Cells (normalize t.ncols cells) :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.make t.ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure t.headers;
  List.iter (function Cells cs -> measure cs | Separator -> ()) rows;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit_cells (Array.make t.ncols Center) t.headers;
  rule ();
  List.iter
    (function
      | Cells cs -> emit_cells t.aligns cs
      | Separator -> rule ())
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
