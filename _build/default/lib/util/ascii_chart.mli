(** ASCII rendering of the paper's figures.

    The original TeamSim fed Gnuplot; here each figure is rendered as a
    character grid so benchmark output is self-contained. Two chart kinds
    cover every figure in the paper: line charts (profiles such as Fig. 7,
    sweeps such as Fig. 10) and horizontal bar charts (aggregates such as
    Fig. 9). *)

type series = { label : string; points : (float * float) list }
(** A named series of (x, y) points. *)

val line_chart :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** Render one or more series on shared axes. Each series is drawn with its
    own glyph ([*], [o], [+], [x], ...); a legend maps glyphs to labels.
    Defaults: 72 columns by 20 rows of plotting area. *)

val bar_chart :
  ?width:int -> title:string -> (string * float) list -> string
(** Horizontal bars, one per labelled value, scaled to the maximum. *)

val histogram :
  ?width:int -> ?bins:int -> title:string -> float list -> string
(** Distribution of a sample as a vertical-bar histogram rendered
    horizontally (one row per bin). *)
