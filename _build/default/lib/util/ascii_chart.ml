type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let finite_or x default = if Float.is_finite x then x else default

let bounds series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> (0., 1., 0., 1.)
  | _ ->
    let fold f init = List.fold_left f init in
    let xmin = fold min infinity xs and xmax = fold max neg_infinity xs in
    let ymin = fold min infinity ys and ymax = fold max neg_infinity ys in
    let xmin = finite_or xmin 0. and xmax = finite_or xmax 1. in
    let ymin = finite_or (min ymin 0.) 0. and ymax = finite_or ymax 1. in
    let xmax = if xmax <= xmin then xmin +. 1. else xmax in
    let ymax = if ymax <= ymin then ymin +. 1. else ymax in
    (xmin, xmax, ymin, ymax)

let line_chart ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "")
    ~title series =
  let xmin, xmax, ymin, ymax = bounds series in
  let grid = Array.make_matrix height width ' ' in
  let plot_x x =
    let frac = (x -. xmin) /. (xmax -. xmin) in
    let col = int_of_float (frac *. float_of_int (width - 1)) in
    max 0 (min (width - 1) col)
  in
  let plot_y y =
    let frac = (y -. ymin) /. (ymax -. ymin) in
    let row = int_of_float (frac *. float_of_int (height - 1)) in
    (height - 1) - max 0 (min (height - 1) row)
  in
  List.iteri
    (fun si s ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      List.iter (fun (x, y) -> grid.(plot_y y).(plot_x x) <- glyph) s.points)
    series;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  if y_label <> "" then begin
    Buffer.add_string buf (Printf.sprintf "  (y: %s)\n" y_label)
  end;
  let ylab_top = Printf.sprintf "%10.3g" ymax in
  let ylab_bot = Printf.sprintf "%10.3g" ymin in
  Array.iteri
    (fun row line ->
      let prefix =
        if row = 0 then ylab_top
        else if row = height - 1 then ylab_bot
        else String.make 10 ' '
      in
      Buffer.add_string buf prefix;
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 10 ' ');
  Buffer.add_string buf " +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%s %-10.3g%*s%10.3g\n" (String.make 10 ' ') xmin
       (width - 20) "" xmax);
  if x_label <> "" then
    Buffer.add_string buf (Printf.sprintf "%12s(x: %s)\n" "" x_label);
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "%12s%c = %s\n" "" glyphs.(si mod Array.length glyphs)
           s.label))
    series;
  Buffer.contents buf

let bar_chart ?(width = 50) ~title entries =
  let max_v =
    List.fold_left (fun acc (_, v) -> max acc (abs_float v)) 0. entries
  in
  let max_v = if max_v <= 0. then 1. else max_v in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, v) ->
      let n = int_of_float (abs_float v /. max_v *. float_of_int width) in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s | %s %.3g\n" label_w label (String.make n '#') v))
    entries;
  Buffer.contents buf

let histogram ?(width = 50) ?(bins = 10) ~title samples =
  match samples with
  | [] -> title ^ "\n  (empty sample)\n"
  | _ ->
    let lo = List.fold_left min infinity samples in
    let hi = List.fold_left max neg_infinity samples in
    let hi = if hi <= lo then lo +. 1. else hi in
    let counts = Array.make bins 0 in
    List.iter
      (fun x ->
        let i =
          int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int bins)
        in
        let i = max 0 (min (bins - 1) i) in
        counts.(i) <- counts.(i) + 1)
      samples;
    let entries =
      Array.to_list
        (Array.mapi
           (fun i c ->
             let bin_lo = lo +. (float_of_int i *. (hi -. lo) /. float_of_int bins) in
             let bin_hi = lo +. (float_of_int (i + 1) *. (hi -. lo) /. float_of_int bins) in
             (Printf.sprintf "[%.3g, %.3g)" bin_lo bin_hi, float_of_int c))
           counts)
    in
    bar_chart ~width ~title entries
