(** Plain-text table rendering for experiment reports.

    Produces aligned, boxed tables comparable to the tables in the paper's
    evaluation section. Cells are strings; the caller formats numbers. *)

type align = Left | Right | Center

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with one header row. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Left] for every column. Lists shorter
    than the column count leave remaining columns at their current setting. *)

val add_row : t -> string list -> unit
(** Append a body row. Rows shorter than the header are padded with empty
    cells; longer rows are truncated to the header width. *)

val add_separator : t -> unit
(** Append a horizontal rule between body rows. *)

val render : t -> string
(** Render to a string, ending with a newline. *)

val print : t -> unit
(** [render] to standard output. *)
