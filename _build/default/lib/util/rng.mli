(** Deterministic pseudo-random number generator.

    A small, fast, splittable SplitMix64 generator. Every stochastic choice
    in the simulator flows through a value of type {!t}, so that a simulation
    run is fully reproducible from its seed, and independent subsystems
    (e.g. each simulated designer) can draw from split, non-interfering
    streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy rng] is an independent generator with the same current state. *)

val split : t -> t
(** [split rng] advances [rng] and returns a new generator whose stream is
    statistically independent from the remainder of [rng]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. [bound] must be positive.

    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val float_range : t -> float -> float -> float
(** [float_range rng lo hi] is uniform in [\[lo, hi)]. Requires [lo <= hi];
    returns [lo] when the range is degenerate. *)

val bool : t -> bool
(** Fair coin flip. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.

    @raise Invalid_argument on the empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.

    @raise Invalid_argument on the empty array. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation (Fisher-Yates). *)
