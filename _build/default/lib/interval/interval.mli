(** Closed real intervals.

    The numeric substrate of the constraint propagation engine: every design
    property's feasible subspace is tracked as a closed interval [\[lo, hi\]]
    (bounds may be infinite). Arithmetic follows standard interval-extension
    rules; inverse ("backward") operations implement the projections needed
    by HC4-style constraint revision.

    Intervals here are never empty: operations that can produce an empty
    result (intersection, inverse projections, partial functions such as
    [sqrt] and [ln]) return an [option], with [None] meaning empty. Plain
    floating-point rounding is used rather than outward rounding; the
    simulator compensates with tolerances where satisfaction is decided. *)

type t = private { lo : float; hi : float }
(** Invariant: [lo <= hi], neither is NaN. *)

val make : float -> float -> t
(** [make lo hi].
    @raise Invalid_argument if [lo > hi] or either bound is NaN. *)

val of_point : float -> t
(** Degenerate interval [\[x, x\]].
    @raise Invalid_argument on NaN. *)

val full : t
(** [(-inf, +inf)]. *)

val nonneg : t
(** [\[0, +inf)]. *)

val lo : t -> float
val hi : t -> float

val is_point : t -> bool
(** True when [lo = hi]. *)

val is_bounded : t -> bool
(** True when both bounds are finite. *)

val mem : float -> t -> bool
val subset : t -> t -> bool
(** [subset a b] iff every point of [a] lies in [b]. *)

val width : t -> float
(** [hi -. lo]; [infinity] for unbounded intervals. *)

val midpoint : t -> float
(** Finite midpoint; clamps toward the finite bound for half-infinite
    intervals and returns [0.] for [full]. *)

val intersect : t -> t -> t option
val hull : t -> t -> t
val inflate : float -> t -> t
(** [inflate eps a] widens both bounds by [eps >= 0]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Forward arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Extended division: when the divisor contains zero the result is the hull
    of the two real branches (possibly [full]). *)

val pow_int : t -> int -> t
(** [pow_int a n] for [n >= 0]. *)

val sqrt_i : t -> t option
(** [None] when the interval is entirely negative; otherwise the square root
    of the non-negative part. *)

val exp_i : t -> t
val ln_i : t -> t option
(** [None] when the interval is entirely non-positive; otherwise the log of
    the positive part. *)

val abs_i : t -> t
val min_i : t -> t -> t
val max_i : t -> t -> t
val scale : float -> t -> t
(** [scale k a] is [mul (of_point k) a]. *)

(** {1 Certainty tests}

    [certainly_*] hold when the relation holds for {e every} pair of points;
    [possibly_*] when it holds for {e some} pair. *)

val certainly_le : t -> t -> bool
val certainly_lt : t -> t -> bool
val certainly_ge : t -> t -> bool
val certainly_eq : t -> t -> bool
val possibly_le : t -> t -> bool
val possibly_eq : t -> t -> bool

(** {1 Inverse projections (HC4 backward phase)}

    Each [inv_*] narrows one argument of a forward operation given the
    result's interval. For [z = x op y]: [inv_add_left z y] is the set of
    [x] compatible with [z] and [y]; intersect with the current [x] domain
    at the call site. [None] results signal an empty projection. *)

val inv_add_left : t -> t -> t
(** x from z = x + y: [z - y]. *)

val inv_sub_left : t -> t -> t
(** x from z = x - y: [z + y]. *)

val inv_sub_right : t -> t -> t
(** y from z = x - y: [x - z]. *)

val inv_mul : t -> t -> t
(** x from z = x * y: extended [z / y]. *)

val inv_div_left : t -> t -> t
(** x from z = x / y: [z * y]. *)

val inv_div_right : t -> t -> t
(** y from z = x / y: extended [x / z]. *)

val inv_pow_int : t -> int -> t option
(** x from z = x^n (hull over real branches; [None] if no real preimage). *)

val inv_sqrt : t -> t option
(** x from z = sqrt x: [z'^2] for the non-negative part [z'] of [z]. *)

val inv_exp : t -> t option
(** x from z = exp x: [ln z] on the positive part of [z]. *)

val inv_ln : t -> t
(** x from z = ln x: [exp z]. *)

val inv_abs : t -> t
(** x from z = |x|: hull of [z'] and [-z'] for the non-negative part [z']
    of [z]; [full]'s subranges degrade gracefully. *)
