(** Property domains.

    A design property's value range E_i (Section 2.1 of the paper): values
    may be real numbers constrained to an interval, a finite ordered set of
    reals (e.g. discrete transistor widths), or a finite set of symbols
    (e.g. abstraction levels). The empty domain records that constraint
    propagation found every value infeasible — the paper's v_F(a_i) = emptyset
    case, which the simulated designer's value-selection function handles
    specially. *)

type t =
  | Empty
  | Continuous of Interval.t
  | Finite of float array  (** strictly increasing *)
  | Symbolic of string list  (** non-empty, duplicate-free *)

val continuous : float -> float -> t
(** [continuous lo hi] is [Continuous (Interval.make lo hi)]. *)

val of_interval : Interval.t -> t

val finite : float list -> t
(** Sorts and deduplicates; empty input yields [Empty]. *)

val symbolic : string list -> t
(** Deduplicates, preserving first occurrence; empty input yields [Empty]. *)

val point : float -> t
(** Singleton numeric domain. *)

val is_empty : t -> bool
val is_numeric : t -> bool
(** [Continuous] or [Finite] (or [Empty]). *)

val is_singleton : t -> bool
val singleton_value : t -> float option
(** The value when the domain is a single number. *)

val mem_num : float -> t -> bool
val mem_sym : string -> t -> bool

val hull : t -> Interval.t option
(** Smallest interval containing a numeric domain; [None] for [Empty] or
    [Symbolic]. *)

val refine : t -> Interval.t -> t
(** [refine d iv] removes from [d] every numeric value outside [iv].
    Symbolic domains are returned unchanged (propagation is numeric). *)

val lowest : t -> float option
val highest : t -> float option
val midpoint : t -> float option

val measure : t -> float
(** Absolute size: interval width, finite cardinality (as float), symbol
    count; [0.] for [Empty] and for singletons. *)

val relative_measure : initial:t -> t -> float
(** Size of a domain relative to the initial range E_i, in [\[0, 1\]]; the
    unit-free "feasible subspace size" used for the smallest-subspace-first
    heuristic (the paper notes raw sizes are unit-dependent). Returns [1.]
    when the initial measure is zero. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
