type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let of_point x =
  if Float.is_nan x then invalid_arg "Interval.of_point: NaN";
  { lo = x; hi = x }

let full = { lo = neg_infinity; hi = infinity }
let nonneg = { lo = 0.; hi = infinity }
let lo a = a.lo
let hi a = a.hi
let is_point a = a.lo = a.hi
let is_bounded a = Float.is_finite a.lo && Float.is_finite a.hi
let mem x a = a.lo <= x && x <= a.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let width a = a.hi -. a.lo

let midpoint a =
  if is_bounded a then (a.lo +. a.hi) /. 2.
  else if Float.is_finite a.lo then a.lo
  else if Float.is_finite a.hi then a.hi
  else 0.

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let inflate eps a =
  if eps < 0. then invalid_arg "Interval.inflate: negative eps";
  { lo = a.lo -. eps; hi = a.hi +. eps }

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf a = Format.fprintf ppf "[%g, %g]" a.lo a.hi
let to_string a = Format.asprintf "%a" pp a

let neg a = { lo = -.a.hi; hi = -.a.lo }
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }

(* 0 * inf would be NaN under IEEE; interval semantics want 0. *)
let prod x y =
  if (x = 0. && not (Float.is_finite y)) || (y = 0. && not (Float.is_finite x))
  then 0.
  else x *. y

let mul a b =
  let p1 = prod a.lo b.lo and p2 = prod a.lo b.hi in
  let p3 = prod a.hi b.lo and p4 = prod a.hi b.hi in
  { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

let div a b =
  if b.lo > 0. || b.hi < 0. then
    let q x y = x /. y in
    let p1 = q a.lo b.lo and p2 = q a.lo b.hi in
    let p3 = q a.hi b.lo and p4 = q a.hi b.hi in
    { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }
  else if b.lo = 0. && b.hi = 0. then full
  else if b.lo = 0. then
    (* divisor in [0, b.hi] *)
    if a.lo >= 0. then { lo = a.lo /. b.hi; hi = infinity }
    else if a.hi <= 0. then { lo = neg_infinity; hi = a.hi /. b.hi }
    else full
  else if b.hi = 0. then
    if a.lo >= 0. then { lo = neg_infinity; hi = a.lo /. b.lo }
    else if a.hi <= 0. then { lo = a.hi /. b.lo; hi = infinity }
    else full
  else full

let rec pow_int a n =
  if n < 0 then invalid_arg "Interval.pow_int: negative exponent"
  else if n = 0 then of_point 1.
  else if n = 1 then a
  else if n mod 2 = 0 then begin
    let abs_a = { lo = 0.; hi = max (abs_float a.lo) (abs_float a.hi) } in
    let abs_a =
      if a.lo > 0. then a
      else if a.hi < 0. then neg a
      else abs_a
    in
    let b = pow_int abs_a (n / 2) in
    mul b b
  end
  else { lo = a.lo ** float_of_int n; hi = a.hi ** float_of_int n }

let sqrt_i a =
  if a.hi < 0. then None
  else Some { lo = sqrt (max 0. a.lo); hi = sqrt a.hi }

let exp_i a = { lo = exp a.lo; hi = exp a.hi }

let ln_i a =
  if a.hi <= 0. then None
  else Some { lo = (if a.lo <= 0. then neg_infinity else log a.lo); hi = log a.hi }

let abs_i a =
  if a.lo >= 0. then a
  else if a.hi <= 0. then neg a
  else { lo = 0.; hi = max (-.a.lo) a.hi }

let min_i a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
let max_i a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }
let scale k a = mul (of_point k) a

let certainly_le a b = a.hi <= b.lo
let certainly_lt a b = a.hi < b.lo
let certainly_ge a b = a.lo >= b.hi
let certainly_eq a b = is_point a && is_point b && a.lo = b.lo
let possibly_le a b = a.lo <= b.hi
let possibly_eq a b = a.lo <= b.hi && b.lo <= a.hi

let inv_add_left z y = sub z y
let inv_sub_left z y = add z y
let inv_sub_right z x = sub x z
let inv_mul z y = div z y
let inv_div_left z y = mul z y
let inv_div_right z x = div x z

let inv_pow_int z n =
  if n < 0 then invalid_arg "Interval.inv_pow_int: negative exponent"
  else if n = 0 then Some full
  else if n mod 2 = 1 then begin
    let root x =
      if Float.is_finite x then
        let r = abs_float x ** (1. /. float_of_int n) in
        if x < 0. then -.r else r
      else x
    in
    Some { lo = root z.lo; hi = root z.hi }
  end
  else if z.hi < 0. then None
  else begin
    (* even power: preimage is symmetric, return the hull [-r, r] *)
    let r =
      if Float.is_finite z.hi then z.hi ** (1. /. float_of_int n) else infinity
    in
    Some { lo = -.r; hi = r }
  end

let inv_sqrt z =
  if z.hi < 0. then None
  else begin
    let lo = max 0. z.lo in
    Some { lo = lo *. lo; hi = (if Float.is_finite z.hi then z.hi *. z.hi else infinity) }
  end

let inv_exp z =
  if z.hi <= 0. then None
  else
    Some
      { lo = (if z.lo <= 0. then neg_infinity else log z.lo);
        hi = (if Float.is_finite z.hi then log z.hi else infinity) }

let inv_ln z =
  { lo = (if Float.is_finite z.lo then exp z.lo else 0.);
    hi = (if Float.is_finite z.hi then exp z.hi else infinity) }

let inv_abs z =
  let hi = max 0. z.hi in
  { lo = -.hi; hi }
