type t =
  | Empty
  | Continuous of Interval.t
  | Finite of float array
  | Symbolic of string list

let continuous lo hi = Continuous (Interval.make lo hi)
let of_interval iv = Continuous iv

let finite values =
  let sorted = List.sort_uniq compare values in
  match sorted with [] -> Empty | _ -> Finite (Array.of_list sorted)

let symbolic syms =
  let dedup =
    List.fold_left (fun acc s -> if List.mem s acc then acc else s :: acc) [] syms
  in
  match List.rev dedup with [] -> Empty | syms -> Symbolic syms

let point x = Continuous (Interval.of_point x)

let is_empty = function Empty -> true | Continuous _ | Finite _ | Symbolic _ -> false

let is_numeric = function
  | Empty | Continuous _ | Finite _ -> true
  | Symbolic _ -> false

let is_singleton = function
  | Empty -> false
  | Continuous iv -> Interval.is_point iv
  | Finite arr -> Array.length arr = 1
  | Symbolic syms -> List.length syms = 1

let singleton_value = function
  | Continuous iv when Interval.is_point iv -> Some (Interval.lo iv)
  | Finite [| x |] -> Some x
  | Empty | Continuous _ | Finite _ | Symbolic _ -> None

let mem_num x = function
  | Empty | Symbolic _ -> false
  | Continuous iv -> Interval.mem x iv
  | Finite arr -> Array.exists (fun v -> v = x) arr

let mem_sym s = function
  | Symbolic syms -> List.mem s syms
  | Empty | Continuous _ | Finite _ -> false

let hull = function
  | Empty | Symbolic _ -> None
  | Continuous iv -> Some iv
  | Finite arr -> Some (Interval.make arr.(0) arr.(Array.length arr - 1))

let refine d iv =
  match d with
  | Empty -> Empty
  | Symbolic _ -> d
  | Continuous cur -> (
    match Interval.intersect cur iv with
    | None -> Empty
    | Some res -> Continuous res)
  | Finite arr -> (
    let kept = Array.to_list arr |> List.filter (fun v -> Interval.mem v iv) in
    match kept with [] -> Empty | _ -> Finite (Array.of_list kept))

let lowest = function
  | Empty | Symbolic _ -> None
  | Continuous iv -> Some (Interval.lo iv)
  | Finite arr -> Some arr.(0)

let highest = function
  | Empty | Symbolic _ -> None
  | Continuous iv -> Some (Interval.hi iv)
  | Finite arr -> Some arr.(Array.length arr - 1)

let midpoint = function
  | Empty | Symbolic _ -> None
  | Continuous iv -> Some (Interval.midpoint iv)
  | Finite arr -> Some arr.(Array.length arr / 2)

let measure = function
  | Empty -> 0.
  | Continuous iv -> Interval.width iv
  | Finite arr -> float_of_int (Array.length arr - 1)
  | Symbolic syms -> float_of_int (List.length syms - 1)

let relative_measure ~initial d =
  let init = measure initial in
  if init <= 0. then 1.
  else begin
    let m = measure d /. init in
    if m > 1. then 1. else m
  end

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Continuous x, Continuous y -> Interval.equal x y
  | Finite x, Finite y -> x = y
  | Symbolic x, Symbolic y -> x = y
  | (Empty | Continuous _ | Finite _ | Symbolic _), _ -> false

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "{}"
  | Continuous iv -> Interval.pp ppf iv
  | Finite arr ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf v -> Format.fprintf ppf "%g" v))
      (Array.to_list arr)
  | Symbolic syms ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_string)
      syms

let to_string d = Format.asprintf "%a" pp d
