lib/interval/domain.mli: Format Interval
