lib/interval/domain.ml: Array Format Interval List
