(** Structural monotonicity analysis.

    The paper's simulated designer (Section 3.1.1) keeps, for each property,
    the lists of constraints that are monotonically increasing and
    monotonically decreasing in it, and uses them to decide which direction
    to move a value when repairing violations. DDDL lets the scenario author
    declare monotonicity; this module derives it automatically from the
    constraint expression whenever the structure permits, so declarations
    are only needed where the analysis answers {!Unknown}.

    The analysis is conservative: a claim of [Increasing] / [Decreasing]
    (both weak, i.e. non-strict) is sound for all points of the supplied
    variable box. *)

open Adpm_interval

type direction = Increasing | Decreasing | Constant | Unknown

val pp_direction : Format.formatter -> direction -> unit
val direction_to_string : direction -> string

val flip : direction -> direction
(** [Increasing <-> Decreasing]; fixes [Constant] and [Unknown]. *)

val combine : direction -> direction -> direction
(** Direction of a sum given directions of its terms. *)

val direction :
  env:(string -> Interval.t) -> Expr.t -> string -> direction
(** [direction ~env e x]: how [e] varies as [x] grows, for variable values
    inside the boxes given by [env]. [env] must cover every variable of
    [e]. *)
