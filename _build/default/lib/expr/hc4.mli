(** HC4 revision: the propagation workhorse.

    The paper's Design Constraint Manager "runs a constraint propagation
    algorithm to compute infeasible property values and the status of all
    constraints" (Section 2.2), delegating numeric work to constraint-based
    systems. HC4 (Benhamou et al., "Revising hull and box consistency",
    ICLP 1999) is the classical such algorithm for arithmetic constraints:
    a forward interval-evaluation sweep annotates every node of the
    expression tree, then a backward sweep projects the constraint's target
    interval onto each variable, shrinking its domain.

    One call to {!revise} is one "constraint evaluation" in the paper's cost
    accounting. *)

open Adpm_interval

type result =
  | Empty
      (** No point of the box can satisfy the constraint: the constraint is
          certainly violated over the current domains. *)
  | Narrowed of (string * Interval.t) list
      (** For each variable of the expression, the narrowed interval (the
          intersection of its input box with every occurrence's projection).
          Unchanged variables are included. *)

val revise :
  env:(string -> Interval.t) -> Expr.t -> Interval.t -> result
(** [revise ~env e target] enforces [e IN target] on the box [env].
    [env] must provide an interval for every variable of [e]. *)
