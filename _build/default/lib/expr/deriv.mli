(** Symbolic differentiation.

    Used by tests to cross-check the structural monotonicity analysis and by
    the heuristic-support layer to quantify constraint sensitivity. *)

val deriv : Expr.t -> string -> Expr.t option
(** [deriv e x] is the partial derivative of [e] with respect to [x], or
    [None] when [e] contains a non-smooth node ([Abs], [Min], [Max]) whose
    argument mentions [x]. The result is simplified. *)
