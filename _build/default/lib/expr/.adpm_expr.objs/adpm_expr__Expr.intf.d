lib/expr/expr.mli: Adpm_interval Format Interval
