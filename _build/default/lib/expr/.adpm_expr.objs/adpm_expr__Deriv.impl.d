lib/expr/deriv.ml: Expr List Option Stdlib String
