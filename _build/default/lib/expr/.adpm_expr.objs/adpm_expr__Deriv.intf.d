lib/expr/deriv.mli: Expr
