lib/expr/expr.ml: Adpm_interval Float Format Interval List Option Stdlib String
