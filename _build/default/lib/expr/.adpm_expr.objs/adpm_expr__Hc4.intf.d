lib/expr/hc4.mli: Adpm_interval Expr Interval
