lib/expr/monotone.ml: Adpm_interval Expr Format Interval String
