lib/expr/hc4.ml: Adpm_interval Expr Float Hashtbl Interval List
