lib/expr/monotone.mli: Adpm_interval Expr Format Interval
