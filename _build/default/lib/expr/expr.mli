(** Arithmetic expressions over design properties.

    Design constraints (Section 2.1 of the paper) are relations between
    arithmetic expressions of property values, e.g. [Pf + Ps <= Pm]. This
    module provides the expression AST shared by the constraint network, the
    propagation engine, the monotonicity analysis and the DDDL elaborator. *)

open Adpm_interval

type t =
  | Const of float
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * int  (** non-negative integer exponent *)
  | Sqrt of t
  | Exp of t
  | Ln of t
  | Abs of t
  | Min of t * t
  | Max of t * t

(** {1 Construction helpers} *)

val const : float -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( ** ) : t -> int -> t
val sum : t list -> t
(** [sum []] is [Const 0.]. *)

val scale : float -> t -> t

(** {1 Queries} *)

val vars : t -> string list
(** Distinct variable names, in first-occurrence order. *)

val mentions : t -> string -> bool
val size : t -> int
(** Node count. *)

val subst : t -> string -> t -> t
(** [subst e x r] replaces every occurrence of [Var x] with [r]. *)

val equal : t -> t -> bool

(** {1 Evaluation} *)

exception Unbound_variable of string

val eval : (string -> float) -> t -> float
(** Point evaluation. May return non-finite values (division by zero, log of
    a non-positive number) following IEEE semantics; [Min]/[Max] are
    NaN-strict (an undefined argument makes the result undefined).
    @raise Unbound_variable via the environment function. *)

val eval_opt : (string -> float option) -> t -> float option
(** As {!eval} but [None] when any variable is unbound. *)

val eval_interval : (string -> Interval.t) -> t -> Interval.t option
(** Interval extension. [None] means the expression has no real value
    anywhere on the box (e.g. [sqrt] of an entirely negative interval). *)

(** {1 Simplification} *)

val simplify : t -> t
(** Constant folding and neutral-element elimination. Preserves point
    semantics on the domain where the original is defined. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Infix rendering with minimal parentheses. *)

val to_string : t -> string
