open Expr

let rec d e x =
  match e with
  | Const _ -> Some (Const 0.)
  | Var y -> Some (Const (if String.equal x y then 1. else 0.))
  | Neg a -> Option.map (fun a' -> Neg a') (d a x)
  | Add (a, b) -> map2 (fun a' b' -> Add (a', b')) a b x
  | Sub (a, b) -> map2 (fun a' b' -> Sub (a', b')) a b x
  | Mul (a, b) -> map2 (fun a' b' -> Add (Mul (a', b), Mul (a, b'))) a b x
  | Div (a, b) ->
    map2 (fun a' b' -> Div (Sub (Mul (a', b), Mul (a, b')), Pow (b, 2))) a b x
  | Pow (a, n) ->
    if n = 0 then Some (Const 0.)
    else
      Option.map
        (fun a' -> Mul (Mul (Const (float_of_int n), Pow (a, Stdlib.( - ) n 1)), a'))
        (d a x)
  | Sqrt a ->
    Option.map (fun a' -> Div (a', Mul (Const 2., Sqrt a))) (d a x)
  | Exp a -> Option.map (fun a' -> Mul (Exp a, a')) (d a x)
  | Ln a -> Option.map (fun a' -> Div (a', a)) (d a x)
  | Abs a | Min (a, _) | Max (a, _) ->
    let args = match e with Min (_, b) | Max (_, b) -> [ a; b ] | _ -> [ a ] in
    if List.exists (fun arg -> mentions arg x) args then None
    else Some (Const 0.)

and map2 f a b x =
  match (d a x, d b x) with
  | Some a', Some b' -> Some (f a' b')
  | _, _ -> None

let deriv e x = Option.map simplify (d e x)
