open Adpm_interval

type direction = Increasing | Decreasing | Constant | Unknown

let pp_direction ppf d =
  Format.pp_print_string ppf
    (match d with
    | Increasing -> "increasing"
    | Decreasing -> "decreasing"
    | Constant -> "constant"
    | Unknown -> "unknown")

let direction_to_string d = Format.asprintf "%a" pp_direction d

let flip = function
  | Increasing -> Decreasing
  | Decreasing -> Increasing
  | (Constant | Unknown) as d -> d

let combine a b =
  match (a, b) with
  | Constant, d | d, Constant -> d
  | Increasing, Increasing -> Increasing
  | Decreasing, Decreasing -> Decreasing
  | Unknown, _ | _, Unknown | Increasing, Decreasing | Decreasing, Increasing
    ->
    Unknown

type sign = Pos | Neg | Zero | Mixed

let sign_of_interval iv =
  let lo = Interval.lo iv and hi = Interval.hi iv in
  if lo = 0. && hi = 0. then Zero
  else if lo >= 0. then Pos
  else if hi <= 0. then Neg
  else Mixed

let sign env e =
  match Expr.eval_interval env e with
  | None -> Mixed
  | Some iv -> sign_of_interval iv

(* Direction of [d * s] where [d] is the direction of a term and [s] the
   sign of its (locally constant) cofactor. *)
let times d s =
  match (d, s) with
  | Constant, _ -> Constant
  | _, Zero -> Constant
  | d, Pos -> d
  | d, Neg -> flip d
  | _, Mixed -> Unknown

let direction ~env e x =
  let rec go e =
    if not (Expr.mentions e x) then Constant
    else
      match e with
      | Expr.Const _ -> Constant
      | Expr.Var y -> if String.equal x y then Increasing else Constant
      | Expr.Neg a -> flip (go a)
      | Expr.Add (a, b) -> combine (go a) (go b)
      | Expr.Sub (a, b) -> combine (go a) (flip (go b))
      | Expr.Mul (a, b) ->
        (* d(ab) = a'b + ab' : sum the sign contributions of both terms. *)
        combine (times (go a) (sign env b)) (times (go b) (sign env a))
      | Expr.Div (a, b) ->
        (* d(a/b) = a'/b - a b'/b^2 *)
        let term1 = times (go a) (sign env b) in
        let term2 = times (flip (go b)) (sign env a) in
        let well_defined =
          match sign env b with Pos | Neg -> true | Zero | Mixed -> false
        in
        if well_defined then combine term1 term2 else Unknown
      | Expr.Pow (a, n) ->
        if n = 0 then Constant
        else if n mod 2 = 1 then go a
        else times (go a) (sign env a)
      | Expr.Sqrt a | Expr.Exp a | Expr.Ln a -> go a
      | Expr.Abs a -> times (go a) (sign env a)
      | Expr.Min (a, b) | Expr.Max (a, b) -> combine (go a) (go b)
  in
  go e
