type t =
  | IDENT of string
  | STRING of string
  | NUMBER of float
  | KW_SCENARIO
  | KW_PROPERTY
  | KW_REAL
  | KW_DISCRETE
  | KW_SYMBOL
  | KW_CONSTRAINT
  | KW_MONOTONE
  | KW_INCREASING
  | KW_DECREASING
  | KW_IN
  | KW_MODEL
  | KW_REQUIREMENT
  | KW_OBJECT
  | KW_PROPERTIES
  | KW_PROBLEM
  | KW_SUBPROBLEM
  | KW_OWNER
  | KW_INPUTS
  | KW_OUTPUTS
  | KW_CONSTRAINTS
  | KW_AFTER
  | KW_LEVELS
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COLON
  | SEMI
  | COMMA
  | EQUAL
  | LE
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | EOF

type located = { token : t; line : int; col : int }

let keywords =
  [
    ("scenario", KW_SCENARIO);
    ("property", KW_PROPERTY);
    ("real", KW_REAL);
    ("discrete", KW_DISCRETE);
    ("symbol", KW_SYMBOL);
    ("constraint", KW_CONSTRAINT);
    ("monotone", KW_MONOTONE);
    ("increasing", KW_INCREASING);
    ("decreasing", KW_DECREASING);
    ("in", KW_IN);
    ("model", KW_MODEL);
    ("requirement", KW_REQUIREMENT);
    ("object", KW_OBJECT);
    ("properties", KW_PROPERTIES);
    ("problem", KW_PROBLEM);
    ("subproblem", KW_SUBPROBLEM);
    ("owner", KW_OWNER);
    ("inputs", KW_INPUTS);
    ("outputs", KW_OUTPUTS);
    ("constraints", KW_CONSTRAINTS);
    ("after", KW_AFTER);
    ("levels", KW_LEVELS);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | STRING s -> Printf.sprintf "string %S" s
  | NUMBER x -> Printf.sprintf "number %g" x
  | KW_SCENARIO -> "'scenario'"
  | KW_PROPERTY -> "'property'"
  | KW_REAL -> "'real'"
  | KW_DISCRETE -> "'discrete'"
  | KW_SYMBOL -> "'symbol'"
  | KW_CONSTRAINT -> "'constraint'"
  | KW_MONOTONE -> "'monotone'"
  | KW_INCREASING -> "'increasing'"
  | KW_DECREASING -> "'decreasing'"
  | KW_IN -> "'in'"
  | KW_MODEL -> "'model'"
  | KW_REQUIREMENT -> "'requirement'"
  | KW_OBJECT -> "'object'"
  | KW_PROPERTIES -> "'properties'"
  | KW_PROBLEM -> "'problem'"
  | KW_SUBPROBLEM -> "'subproblem'"
  | KW_OWNER -> "'owner'"
  | KW_INPUTS -> "'inputs'"
  | KW_OUTPUTS -> "'outputs'"
  | KW_CONSTRAINTS -> "'constraints'"
  | KW_AFTER -> "'after'"
  | KW_LEVELS -> "'levels'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COLON -> "':'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | EQUAL -> "'='"
  | LE -> "'<='"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | CARET -> "'^'"
  | EOF -> "end of input"
