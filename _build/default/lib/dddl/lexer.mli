(** Hand-written lexer for DDDL.

    Supports [//] line comments and [/* ... */] block comments, decimal
    numbers with optional exponent, identifiers (which may be keywords),
    and double-quoted strings (used for names containing characters outside
    the identifier alphabet, such as ["Diff-pair-W"]). *)

exception Error of { line : int; col : int; message : string }

val tokenize : string -> Token.located list
(** The result always ends with an [EOF] token.
    @raise Error on malformed input. *)
