open Adpm_expr
open Adpm_csp

type domain_decl =
  | D_real of float * float
  | D_discrete of float list
  | D_symbol of string list

type property_decl = {
  pd_name : string;
  pd_domain : domain_decl;
  pd_levels : string option;
}

type monotone_decl = {
  md_helps : [ `Increasing | `Decreasing ];
  md_prop : string;
}

type constraint_decl = {
  cd_name : string;
  cd_lhs : Expr.t;
  cd_rel : Constr.rel;
  cd_rhs : Expr.t;
  cd_monotone : monotone_decl list;
}

type problem_decl = {
  prd_name : string;
  prd_owner : string;
  prd_inputs : string list;
  prd_outputs : string list;
  prd_constraints : string list;
  prd_object : string option;
  prd_after : string list;
  prd_children : problem_decl list;
}

type scenario_decl = {
  sd_name : string;
  sd_properties : property_decl list;
  sd_constraints : constraint_decl list;
  sd_models : (string * Expr.t) list;
  sd_requirements : (string * float) list;
  sd_objects : (string * string list) list;
  sd_problem : problem_decl;
}
