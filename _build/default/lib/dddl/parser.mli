(** Recursive-descent parser for DDDL. *)

exception Error of { line : int; col : int; message : string }

val parse : string -> Ast.scenario_decl
(** Parse a complete scenario description.
    @raise Error on syntax errors (with source position).
    @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Adpm_expr.Expr.t
(** Parse a standalone arithmetic expression (testing hook). *)
