(** Tokens of the DDDL scenario-description language. *)

type t =
  | IDENT of string
  | STRING of string
  | NUMBER of float
  | KW_SCENARIO
  | KW_PROPERTY
  | KW_REAL
  | KW_DISCRETE
  | KW_SYMBOL
  | KW_CONSTRAINT
  | KW_MONOTONE
  | KW_INCREASING
  | KW_DECREASING
  | KW_IN
  | KW_MODEL
  | KW_REQUIREMENT
  | KW_OBJECT
  | KW_PROPERTIES
  | KW_PROBLEM
  | KW_SUBPROBLEM
  | KW_OWNER
  | KW_INPUTS
  | KW_OUTPUTS
  | KW_CONSTRAINTS
  | KW_AFTER
  | KW_LEVELS
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COLON
  | SEMI
  | COMMA
  | EQUAL
  | LE
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | EOF

type located = { token : t; line : int; col : int }

val keyword_of_string : string -> t option
val to_string : t -> string
