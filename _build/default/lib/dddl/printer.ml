open Adpm_expr
open Adpm_csp

let is_plain_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s
  && Token.keyword_of_string s = None

let name s = if is_plain_ident s then s else Printf.sprintf "%S" s

(* Shortest decimal rendering that parses back to the same float. *)
let float_lit x =
  let try_fmt fmt =
    let s = Printf.sprintf fmt x in
    if float_of_string s = x then Some s else None
  in
  match try_fmt "%.12g" with
  | Some s -> s
  | None -> ( match try_fmt "%.17g" with Some s -> s | None -> string_of_float x)

(* DDDL grammar precedence: 0 additive, 1 multiplicative, 2 unary,
   3 power base (atoms only). *)
let expr e =
  let buf = Buffer.create 64 in
  let rec go prec e =
    let paren p body =
      if p < prec then begin
        Buffer.add_char buf '(';
        body ();
        Buffer.add_char buf ')'
      end
      else body ()
    in
    match e with
    | Expr.Const c ->
      if c < 0. then
        paren 2 (fun () -> Buffer.add_string buf (float_lit c))
      else Buffer.add_string buf (float_lit c)
    | Expr.Var x -> Buffer.add_string buf (name x)
    | Expr.Neg a ->
      paren 2 (fun () ->
          Buffer.add_char buf '-';
          go 2 a)
    | Expr.Add (a, b) ->
      paren 0 (fun () ->
          go 0 a;
          Buffer.add_string buf " + ";
          go 1 b)
    | Expr.Sub (a, b) ->
      paren 0 (fun () ->
          go 0 a;
          Buffer.add_string buf " - ";
          go 1 b)
    | Expr.Mul (a, b) ->
      paren 1 (fun () ->
          go 1 a;
          Buffer.add_string buf " * ";
          go 2 b)
    | Expr.Div (a, b) ->
      paren 1 (fun () ->
          go 1 a;
          Buffer.add_string buf " / ";
          go 2 b)
    | Expr.Pow (a, n) ->
      paren 2 (fun () ->
          go 3 a;
          Buffer.add_string buf (Printf.sprintf "^%d" n))
    | Expr.Sqrt a -> call "sqrt" [ a ]
    | Expr.Exp a -> call "exp" [ a ]
    | Expr.Ln a -> call "ln" [ a ]
    | Expr.Abs a -> call "abs" [ a ]
    | Expr.Min (a, b) -> call "min" [ a; b ]
    | Expr.Max (a, b) -> call "max" [ a; b ]
  and call fn args =
    Buffer.add_string buf fn;
    Buffer.add_char buf '(';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        go 0 a)
      args;
    Buffer.add_char buf ')'
  in
  go 0 e;
  Buffer.contents buf

let domain = function
  | Ast.D_real (lo, hi) ->
    Printf.sprintf "real [%s, %s]" (float_lit lo) (float_lit hi)
  | Ast.D_discrete values ->
    Printf.sprintf "discrete {%s}" (String.concat ", " (List.map float_lit values))
  | Ast.D_symbol values ->
    Printf.sprintf "symbol {%s}" (String.concat ", " (List.map name values))

let rel = function Constr.Le -> "<=" | Constr.Ge -> ">=" | Constr.Eq -> "="

let name_list names = String.concat ", " (List.map name names)

let scenario decl =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "scenario %s {\n" (name decl.Ast.sd_name);
  List.iter
    (fun p ->
      add "  property %s : %s%s;\n" (name p.Ast.pd_name) (domain p.Ast.pd_domain)
        (match p.Ast.pd_levels with
        | Some l -> Printf.sprintf " levels %S" l
        | None -> ""))
    decl.Ast.sd_properties;
  List.iter
    (fun c ->
      add "  constraint %s : %s %s %s" (name c.Ast.cd_name) (expr c.Ast.cd_lhs)
        (rel c.Ast.cd_rel) (expr c.Ast.cd_rhs);
      match c.Ast.cd_monotone with
      | [] -> add ";\n"
      | decls ->
        add " {\n";
        List.iter
          (fun m ->
            add "    monotone %s in %s;\n"
              (match m.Ast.md_helps with
              | `Increasing -> "increasing"
              | `Decreasing -> "decreasing")
              (name m.Ast.md_prop))
          decls;
        add "  }\n")
    decl.Ast.sd_constraints;
  List.iter
    (fun (target, model) -> add "  model %s = %s;\n" (name target) (expr model))
    decl.Ast.sd_models;
  List.iter
    (fun (target, value) ->
      add "  requirement %s = %s;\n" (name target) (float_lit value))
    decl.Ast.sd_requirements;
  List.iter
    (fun (obj, props) ->
      add "  object %s { properties: %s; }\n" (name obj) (name_list props))
    decl.Ast.sd_objects;
  let rec problem indent kw p =
    let pad = String.make indent ' ' in
    add "%s%s %s owner %s {\n" pad kw (name p.Ast.prd_name) (name p.Ast.prd_owner);
    let field label = function
      | [] -> ()
      | xs -> add "%s  %s: %s;\n" pad label (name_list xs)
    in
    field "inputs" p.Ast.prd_inputs;
    field "outputs" p.Ast.prd_outputs;
    field "constraints" p.Ast.prd_constraints;
    (match p.Ast.prd_object with
    | Some o -> add "%s  object: %s;\n" pad (name o)
    | None -> ());
    field "after" p.Ast.prd_after;
    List.iter (problem (indent + 2) "subproblem") p.Ast.prd_children;
    add "%s}\n" pad
  in
  problem 2 "problem" decl.Ast.sd_problem;
  add "}\n";
  Buffer.contents buf
