lib/dddl/printer.mli: Adpm_expr Ast
