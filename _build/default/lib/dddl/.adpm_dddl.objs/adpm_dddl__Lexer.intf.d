lib/dddl/lexer.mli: Token
