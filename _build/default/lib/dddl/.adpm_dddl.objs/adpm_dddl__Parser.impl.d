lib/dddl/parser.ml: Adpm_csp Adpm_expr Ast Constr Expr Float Lexer List Printf String Token
