lib/dddl/elaborate.ml: Adpm_core Adpm_csp Adpm_expr Adpm_interval Adpm_teamsim Ast Constr Design_object Domain Dpm Expr Hashtbl List Monotone Network Parser Printf Problem Scenario String Value
