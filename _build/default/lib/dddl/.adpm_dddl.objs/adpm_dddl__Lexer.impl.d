lib/dddl/lexer.ml: Buffer List Printf String Token
