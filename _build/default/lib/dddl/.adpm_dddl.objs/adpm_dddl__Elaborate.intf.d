lib/dddl/elaborate.mli: Adpm_teamsim Ast
