lib/dddl/token.ml: List Printf
