lib/dddl/parser.mli: Adpm_expr Ast
