lib/dddl/ast.mli: Adpm_csp Adpm_expr Constr Expr
