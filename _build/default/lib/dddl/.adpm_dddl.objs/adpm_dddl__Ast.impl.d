lib/dddl/ast.ml: Adpm_csp Adpm_expr Constr Expr
