lib/dddl/token.mli:
