lib/dddl/printer.ml: Adpm_csp Adpm_expr Ast Buffer Constr Expr List Printf String Token
