(** Pretty-printer for DDDL.

    Produces text that the parser reads back to a structurally identical
    AST (the round-trip property tested in the suite). Useful for exporting
    programmatically built scenarios — e.g. generated ones — as editable
    DDDL sources. *)

val name : string -> string
(** A property/constraint/problem name, quoted when it is not a plain
    identifier (or collides with a keyword). *)

val expr : Adpm_expr.Expr.t -> string
(** Infix rendering with minimal parentheses, parseable by
    {!Parser.parse_expr}. *)

val scenario : Ast.scenario_decl -> string
(** A complete scenario description, parseable by {!Parser.parse}. *)
