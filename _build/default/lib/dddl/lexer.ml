exception Error of { line : int; col : int; message : string }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st message = raise (Error { line = st.line; col = st.col; message })

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec scan () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        scan ()
      | None, _ -> error st "unterminated block comment"
    in
    scan ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  if peek st = Some '.' && (match peek2 st with Some c -> is_digit c | _ -> false)
  then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    if not (match peek st with Some c -> is_digit c | None -> false) then
      error st "malformed exponent";
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done
  | Some _ | None -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some x -> Token.NUMBER x
  | None -> error st (Printf.sprintf "malformed number %s" text)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match Token.keyword_of_string text with
  | Some kw -> kw
  | None -> Token.IDENT text

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec scan () =
    match peek st with
    | Some '"' -> advance st
    | Some '\n' | None -> error st "unterminated string literal"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      scan ()
  in
  scan ();
  Token.STRING (Buffer.contents buf)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit line col token = tokens := { Token.token; line; col } :: !tokens in
  let rec loop () =
    skip_trivia st;
    let line = st.line and col = st.col in
    match peek st with
    | None -> emit line col Token.EOF
    | Some c ->
      (match c with
      | '{' -> advance st; emit line col Token.LBRACE
      | '}' -> advance st; emit line col Token.RBRACE
      | '[' -> advance st; emit line col Token.LBRACKET
      | ']' -> advance st; emit line col Token.RBRACKET
      | '(' -> advance st; emit line col Token.LPAREN
      | ')' -> advance st; emit line col Token.RPAREN
      | ':' -> advance st; emit line col Token.COLON
      | ';' -> advance st; emit line col Token.SEMI
      | ',' -> advance st; emit line col Token.COMMA
      | '=' -> advance st; emit line col Token.EQUAL
      | '+' -> advance st; emit line col Token.PLUS
      | '-' -> advance st; emit line col Token.MINUS
      | '*' -> advance st; emit line col Token.STAR
      | '/' -> advance st; emit line col Token.SLASH
      | '^' -> advance st; emit line col Token.CARET
      | '<' when peek2 st = Some '=' ->
        advance st; advance st;
        emit line col Token.LE
      | '>' when peek2 st = Some '=' ->
        advance st; advance st;
        emit line col Token.GE
      | '"' -> emit line col (lex_string st)
      | c when is_digit c -> emit line col (lex_number st)
      | c when is_ident_start c -> emit line col (lex_ident st)
      | c -> error st (Printf.sprintf "unexpected character %C" c));
      loop ()
  in
  loop ();
  List.rev !tokens
