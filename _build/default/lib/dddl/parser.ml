open Adpm_expr
open Adpm_csp

exception Error of { line : int; col : int; message : string }

type state = { mutable tokens : Token.located list }

let current st =
  match st.tokens with
  | tok :: _ -> tok
  | [] -> { Token.token = Token.EOF; line = 0; col = 0 }

let fail st message =
  let tok = current st in
  raise (Error { line = tok.Token.line; col = tok.Token.col; message })

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let peek st = (current st).Token.token

let expect st token =
  if peek st = token then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string token)
         (Token.to_string (peek st)))

let accept st token =
  if peek st = token then begin
    advance st;
    true
  end
  else false

(* property / constraint / problem names: identifier or quoted string *)
let name st =
  match peek st with
  | Token.IDENT s | Token.STRING s ->
    advance st;
    s
  | t -> fail st (Printf.sprintf "expected a name but found %s" (Token.to_string t))

let number st =
  match peek st with
  | Token.NUMBER x ->
    advance st;
    x
  | Token.MINUS -> (
    advance st;
    match peek st with
    | Token.NUMBER x ->
      advance st;
      -.x
    | t -> fail st (Printf.sprintf "expected a number but found %s" (Token.to_string t)))
  | t -> fail st (Printf.sprintf "expected a number but found %s" (Token.to_string t))

let name_list st =
  let first = name st in
  let rec more acc =
    if accept st Token.COMMA then more (name st :: acc) else List.rev acc
  in
  more [ first ]

(* {2 Expressions} *)

let rec expr st = additive st

and additive st =
  let rec loop lhs =
    if accept st Token.PLUS then loop (Expr.Add (lhs, multiplicative st))
    else if accept st Token.MINUS then loop (Expr.Sub (lhs, multiplicative st))
    else lhs
  in
  loop (multiplicative st)

and multiplicative st =
  let rec loop lhs =
    if accept st Token.STAR then loop (Expr.Mul (lhs, unary st))
    else if accept st Token.SLASH then loop (Expr.Div (lhs, unary st))
    else lhs
  in
  loop (unary st)

and unary st =
  if accept st Token.MINUS then begin
    (* fold unary minus on literals so "-3.5" reads as the constant -3.5 *)
    match unary st with
    | Expr.Const c -> Expr.Const (-.c)
    | e -> Expr.Neg e
  end
  else power st

and power st =
  let base = atom st in
  if accept st Token.CARET then begin
    match peek st with
    | Token.NUMBER x when Float.is_integer x && x >= 0. ->
      advance st;
      Expr.Pow (base, int_of_float x)
    | _ -> fail st "exponent must be a non-negative integer"
  end
  else base

and atom st =
  match peek st with
  | Token.NUMBER x ->
    advance st;
    Expr.Const x
  | Token.LPAREN ->
    advance st;
    let e = expr st in
    expect st Token.RPAREN;
    e
  | Token.STRING s ->
    advance st;
    Expr.Var s
  | Token.IDENT fn when is_function st fn -> function_call st fn
  | Token.IDENT s ->
    advance st;
    Expr.Var s
  | t -> fail st (Printf.sprintf "expected an expression but found %s" (Token.to_string t))

and is_function st fn =
  (* a function name must be followed by '(' *)
  (match fn with
  | "sqrt" | "exp" | "ln" | "abs" | "min" | "max" -> true
  | _ -> false)
  &&
  match st.tokens with
  | _ :: { Token.token = Token.LPAREN; _ } :: _ -> true
  | _ -> false

and function_call st fn =
  advance st;
  expect st Token.LPAREN;
  let first = expr st in
  let result =
    match fn with
    | "sqrt" -> Expr.Sqrt first
    | "exp" -> Expr.Exp first
    | "ln" -> Expr.Ln first
    | "abs" -> Expr.Abs first
    | "min" | "max" ->
      expect st Token.COMMA;
      let second = expr st in
      if String.equal fn "min" then Expr.Min (first, second)
      else Expr.Max (first, second)
    | _ -> fail st (Printf.sprintf "unknown function %s" fn)
  in
  expect st Token.RPAREN;
  result

(* {2 Declarations} *)

let domain_decl st =
  if accept st Token.KW_REAL then begin
    expect st Token.LBRACKET;
    let lo = number st in
    expect st Token.COMMA;
    let hi = number st in
    expect st Token.RBRACKET;
    Ast.D_real (lo, hi)
  end
  else if accept st Token.KW_DISCRETE then begin
    expect st Token.LBRACE;
    let first = number st in
    let rec more acc =
      if accept st Token.COMMA then more (number st :: acc) else List.rev acc
    in
    let values = more [ first ] in
    expect st Token.RBRACE;
    Ast.D_discrete values
  end
  else if accept st Token.KW_SYMBOL then begin
    expect st Token.LBRACE;
    let values = name_list st in
    expect st Token.RBRACE;
    Ast.D_symbol values
  end
  else fail st "expected a domain ('real', 'discrete' or 'symbol')"

let property_decl st =
  let pd_name = name st in
  expect st Token.COLON;
  let pd_domain = domain_decl st in
  let pd_levels =
    if accept st Token.KW_LEVELS then
      match peek st with
      | Token.STRING s ->
        advance st;
        Some s
      | _ -> fail st "expected a string after 'levels'"
    else None
  in
  expect st Token.SEMI;
  { Ast.pd_name; pd_domain; pd_levels }

let relation st =
  if accept st Token.LE then Constr.Le
  else if accept st Token.GE then Constr.Ge
  else if accept st Token.EQUAL then Constr.Eq
  else fail st "expected a relation ('<=', '>=' or '=')"

let monotone_decl st =
  expect st Token.KW_MONOTONE;
  let md_helps =
    if accept st Token.KW_INCREASING then `Increasing
    else if accept st Token.KW_DECREASING then `Decreasing
    else fail st "expected 'increasing' or 'decreasing'"
  in
  expect st Token.KW_IN;
  let md_prop = name st in
  expect st Token.SEMI;
  { Ast.md_helps; md_prop }

let constraint_decl st =
  let cd_name = name st in
  expect st Token.COLON;
  let cd_lhs = expr st in
  let cd_rel = relation st in
  let cd_rhs = expr st in
  let cd_monotone =
    if accept st Token.LBRACE then begin
      let rec loop acc =
        if peek st = Token.RBRACE then List.rev acc
        else loop (monotone_decl st :: acc)
      in
      let decls = loop [] in
      expect st Token.RBRACE;
      decls
    end
    else begin
      expect st Token.SEMI;
      []
    end
  in
  { Ast.cd_name; cd_lhs; cd_rel; cd_rhs; cd_monotone }

let rec problem_body st prd_name prd_owner =
  expect st Token.LBRACE;
  let inputs = ref [] and outputs = ref [] and constraints = ref [] in
  let object_name = ref None and after = ref [] and children = ref [] in
  let rec loop () =
    if accept st Token.RBRACE then ()
    else begin
      (if accept st Token.KW_INPUTS then begin
         expect st Token.COLON;
         inputs := !inputs @ name_list st;
         expect st Token.SEMI
       end
       else if accept st Token.KW_OUTPUTS then begin
         expect st Token.COLON;
         outputs := !outputs @ name_list st;
         expect st Token.SEMI
       end
       else if accept st Token.KW_CONSTRAINTS then begin
         expect st Token.COLON;
         constraints := !constraints @ name_list st;
         expect st Token.SEMI
       end
       else if accept st Token.KW_OBJECT then begin
         expect st Token.COLON;
         object_name := Some (name st);
         expect st Token.SEMI
       end
       else if accept st Token.KW_AFTER then begin
         expect st Token.COLON;
         after := !after @ name_list st;
         expect st Token.SEMI
       end
       else if accept st Token.KW_SUBPROBLEM then begin
         let child_name = name st in
         expect st Token.KW_OWNER;
         let child_owner = name st in
         children := problem_body st child_name child_owner :: !children
       end
       else fail st "expected a problem item");
      loop ()
    end
  in
  loop ();
  {
    Ast.prd_name;
    prd_owner;
    prd_inputs = !inputs;
    prd_outputs = !outputs;
    prd_constraints = !constraints;
    prd_object = !object_name;
    prd_after = !after;
    prd_children = List.rev !children;
  }

let object_decl st =
  let obj_name = name st in
  expect st Token.LBRACE;
  expect st Token.KW_PROPERTIES;
  expect st Token.COLON;
  let props = name_list st in
  expect st Token.SEMI;
  expect st Token.RBRACE;
  (obj_name, props)

let scenario st =
  expect st Token.KW_SCENARIO;
  let sd_name = name st in
  expect st Token.LBRACE;
  let properties = ref [] and constraints = ref [] and models = ref [] in
  let requirements = ref [] and objects = ref [] and problem = ref None in
  let rec loop () =
    if accept st Token.RBRACE then ()
    else begin
      (if accept st Token.KW_PROPERTY then
         properties := property_decl st :: !properties
       else if accept st Token.KW_CONSTRAINT then
         constraints := constraint_decl st :: !constraints
       else if accept st Token.KW_MODEL then begin
         let target = name st in
         expect st Token.EQUAL;
         let model = expr st in
         expect st Token.SEMI;
         models := (target, model) :: !models
       end
       else if accept st Token.KW_REQUIREMENT then begin
         let target = name st in
         expect st Token.EQUAL;
         let value = number st in
         expect st Token.SEMI;
         requirements := (target, value) :: !requirements
       end
       else if accept st Token.KW_OBJECT then
         objects := object_decl st :: !objects
       else if accept st Token.KW_PROBLEM then begin
         let prob_name = name st in
         expect st Token.KW_OWNER;
         let owner = name st in
         let decl = problem_body st prob_name owner in
         match !problem with
         | None -> problem := Some decl
         | Some _ -> fail st "a scenario has exactly one top-level problem"
       end
       else fail st "expected a scenario item");
      loop ()
    end
  in
  loop ();
  expect st Token.EOF;
  match !problem with
  | None -> fail st "scenario is missing its top-level problem"
  | Some sd_problem ->
    {
      Ast.sd_name;
      sd_properties = List.rev !properties;
      sd_constraints = List.rev !constraints;
      sd_models = List.rev !models;
      sd_requirements = List.rev !requirements;
      sd_objects = List.rev !objects;
      sd_problem;
    }

let parse src =
  let st = { tokens = Lexer.tokenize src } in
  scenario st

let parse_expr src =
  let st = { tokens = Lexer.tokenize src } in
  let e = expr st in
  expect st Token.EOF;
  e
