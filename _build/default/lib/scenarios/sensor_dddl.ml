let source =
  {|
// The MEMS pressure-sensing system (Section 3.2) in DDDL: 26 properties,
// 21 mostly-linear constraints. The exact twin of the OCaml-built Sensor
// scenario (tests assert identical simulations).
scenario sensor_dddl {
  // sensor subsystem
  property radius          : real [100, 1000];
  property thickness       : real [1, 20];
  property gap             : real [0.5, 5];
  property "base-cap"      : real [1, 20];
  property sensitivity     : real [0.1, 4];
  property "max-pressure"  : real [10, 1000];
  property "sensor-noise"  : real [0.1, 5];
  property yield           : real [50, 100];
  // interface subsystem
  property "amp-gain"      : real [1, 100];
  property "adc-bits"      : discrete {8, 10, 12, 14, 16};
  property "bias-current"  : real [0.1, 5];
  property "circuit-noise" : real [0.1, 10];
  property "interface-power" : real [0.5, 50];
  property offset          : real [0.1, 10];
  // top-level requirements
  property "req-resolution" : real [0.5, 10];
  property "req-yield"      : real [50, 95];
  property "req-range"      : real [50, 500];
  property "req-power"      : real [2, 50];
  property "req-cap-min"    : real [1, 10];
  property "req-cap-max"    : real [5, 20];
  property "req-offset-max" : real [0.5, 5];
  property "req-noise-max"  : real [1, 20];
  property "req-sens-min"   : real [0.1, 2];
  property "req-bits-min"   : real [8, 16];
  property "req-gain-max"   : real [10, 100];
  property "req-t-max"      : real [2, 20];

  // sensor model bands (linear)
  constraint "SensorCap-lo" :
    "base-cap" >= 0.02 * radius - 2 * gap - 0.5;
  constraint "SensorCap-hi" :
    "base-cap" <= 0.02 * radius - 2 * gap + 0.5;
  constraint "Sensitivity-hi" :
    sensitivity <= 0.004 * radius - 0.1 * thickness - 0.2 * gap + 0.2;
  constraint "MaxPressure-hi" :
    "max-pressure" <= 50 * thickness - 0.05 * radius + 20;
  constraint "SensorNoise-lo" :
    "sensor-noise" >= 1.8 - 0.002 * radius + 0.1 * gap;
  constraint "Yield-hi" :
    yield <= 92 - 2 * thickness - 0.004 * radius + 3 * gap;

  // interface model bands (linear)
  constraint "CircuitNoise-lo" :
    "circuit-noise" >= 4.7 - 0.04 * "amp-gain" - 0.8 * "bias-current";
  constraint "InterfacePower-lo" :
    "interface-power" >= 2 * "bias-current" + 0.05 * "amp-gain" + 0.3 * "adc-bits" - 0.5;
  constraint "Offset-lo" :
    offset >= 2.7 - 0.1 * "amp-gain";

  // system constraints
  constraint Resolution :
    "sensor-noise" + "circuit-noise" <= 2 * "req-resolution" * sensitivity;
  constraint YieldReq : yield >= "req-yield";
  constraint PressureRange : "max-pressure" >= "req-range";
  constraint PowerBudget : "interface-power" <= "req-power";
  constraint "CapWindow-lo" : "base-cap" >= "req-cap-min";
  constraint "CapWindow-hi" : "base-cap" <= "req-cap-max";
  constraint OffsetReq : offset <= "req-offset-max";
  constraint NoiseBudget : "sensor-noise" + "circuit-noise" <= "req-noise-max";
  constraint SensReq : sensitivity >= "req-sens-min";
  constraint BitsReq : "adc-bits" >= "req-bits-min";
  constraint GainMax : "amp-gain" <= "req-gain-max";
  constraint ThicknessMax : thickness <= "req-t-max";

  // the synthesis tools' models (band centres)
  model "base-cap"        = 0.02 * radius - 2 * gap;
  model sensitivity       = 0.004 * radius - 0.1 * thickness - 0.2 * gap;
  model "max-pressure"    = 50 * thickness - 0.05 * radius;
  model "sensor-noise"    = 2 - 0.002 * radius + 0.1 * gap;
  model yield             = 90 - 2 * thickness - 0.004 * radius + 3 * gap;
  model "circuit-noise"   = 5 - 0.04 * "amp-gain" - 0.8 * "bias-current";
  model "interface-power" = 2 * "bias-current" + 0.05 * "amp-gain" + 0.3 * "adc-bits";
  model offset            = 3 - 0.1 * "amp-gain";

  requirement "req-resolution" = 2.3;
  requirement "req-yield" = 78;
  requirement "req-range" = 180;
  requirement "req-power" = 8.5;
  requirement "req-cap-min" = 3;
  requirement "req-cap-max" = 12;
  requirement "req-offset-max" = 2;
  requirement "req-noise-max" = 5.5;
  requirement "req-sens-min" = 0.5;
  requirement "req-bits-min" = 10;
  requirement "req-gain-max" = 50;
  requirement "req-t-max" = 10;

  object PressureSensor {
    properties: radius, thickness, gap, "base-cap", sensitivity,
      "max-pressure", "sensor-noise", yield;
  }
  object InterfaceCircuit {
    properties: "amp-gain", "adc-bits", "bias-current", "circuit-noise",
      "interface-power", offset;
  }

  problem "sensing-system" owner leader {
    inputs: "req-resolution", "req-yield", "req-range", "req-power",
      "req-cap-min", "req-cap-max", "req-offset-max", "req-noise-max",
      "req-sens-min", "req-bits-min", "req-gain-max", "req-t-max";
    constraints: Resolution, YieldReq, PressureRange, PowerBudget,
      "CapWindow-lo", "CapWindow-hi", OffsetReq, NoiseBudget, SensReq,
      BitsReq, GainMax, ThicknessMax;
    subproblem "pressure-sensor" owner mems {
      inputs: "req-resolution", "req-yield", "req-range";
      outputs: radius, thickness, gap, "base-cap", sensitivity,
        "max-pressure", "sensor-noise", yield;
      constraints: "SensorCap-lo", "SensorCap-hi", "Sensitivity-hi",
        "MaxPressure-hi", "SensorNoise-lo", "Yield-hi";
      object: PressureSensor;
    }
    subproblem "interface-circuit" owner analog {
      inputs: "req-resolution", "req-power", "req-noise-max";
      outputs: "amp-gain", "adc-bits", "bias-current", "circuit-noise",
        "interface-power", offset;
      constraints: "CircuitNoise-lo", "InterfacePower-lo", "Offset-lo";
      object: InterfaceCircuit;
    }
  }
}
|}

let scenario = Adpm_dddl.Elaborate.load_string source
