lib/scenarios/simple.mli: Adpm_core Adpm_expr Adpm_teamsim Dpm Scenario
