lib/scenarios/simple_dddl.mli: Adpm_teamsim
