lib/scenarios/builder.mli: Adpm_core Adpm_csp Adpm_expr Constr Design_object Dpm Expr Network
