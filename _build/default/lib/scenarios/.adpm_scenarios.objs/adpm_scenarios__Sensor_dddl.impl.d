lib/scenarios/sensor_dddl.ml: Adpm_dddl
