lib/scenarios/generated.ml: Adpm_core Adpm_csp Adpm_expr Adpm_teamsim Adpm_util Array Builder Design_object Expr List Network Printf Rng Scenario
