lib/scenarios/receiver_dddl.ml: Adpm_dddl
