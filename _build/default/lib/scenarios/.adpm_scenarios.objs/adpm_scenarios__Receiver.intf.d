lib/scenarios/receiver.mli: Adpm_core Adpm_teamsim Dpm Scenario
