lib/scenarios/sensor.ml: Adpm_core Adpm_csp Adpm_expr Adpm_interval Adpm_teamsim Builder Design_object Domain Expr Network Scenario
