lib/scenarios/simple_dddl.ml: Adpm_dddl
