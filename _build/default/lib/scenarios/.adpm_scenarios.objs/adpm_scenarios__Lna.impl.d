lib/scenarios/lna.ml: Adpm_core Adpm_csp Adpm_expr Adpm_interval Adpm_teamsim Builder Constr Design_object Dpm Expr List Network Problem Scenario Value
