lib/scenarios/sensor.mli: Adpm_core Adpm_teamsim Dpm Scenario
