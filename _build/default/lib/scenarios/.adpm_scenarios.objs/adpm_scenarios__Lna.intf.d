lib/scenarios/lna.mli: Adpm_core Adpm_teamsim Dpm Scenario
