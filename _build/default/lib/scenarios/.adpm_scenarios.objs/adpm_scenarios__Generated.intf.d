lib/scenarios/generated.mli: Adpm_core Adpm_teamsim Dpm Scenario
