lib/scenarios/simple.ml: Adpm_core Adpm_csp Adpm_expr Adpm_teamsim Builder Design_object Expr Scenario
