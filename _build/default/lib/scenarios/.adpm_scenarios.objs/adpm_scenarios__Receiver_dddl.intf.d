lib/scenarios/receiver_dddl.mli: Adpm_teamsim
