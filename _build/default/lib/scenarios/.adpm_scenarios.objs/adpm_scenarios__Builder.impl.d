lib/scenarios/builder.ml: Adpm_core Adpm_csp Adpm_interval Constr Domain Dpm List Network Problem Value
