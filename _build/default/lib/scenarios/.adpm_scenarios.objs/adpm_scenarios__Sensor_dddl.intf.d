lib/scenarios/sensor_dddl.mli: Adpm_teamsim
