(** Shared scenario-construction helpers.

    Scenarios assemble the same ingredients (Section 3.1.2): a network of
    properties and constraints, initial values for top-level requirements, a
    top-level problem, a decomposition into subproblems with owners, and
    design objects for the browsers. This module removes the boilerplate. *)

open Adpm_expr
open Adpm_csp
open Adpm_core

type problem_spec = {
  ps_name : string;
  ps_owner : string;
  ps_inputs : string list;
  ps_outputs : string list;
  ps_constraints : Constr.t list;
  ps_object : string option;
}

val assemble :
  mode:Dpm.mode ->
  net:Network.t ->
  objects:Design_object.t list ->
  top_name:string ->
  leader:string ->
  requirements:(string * float) list ->
  system_constraints:Constr.t list ->
  subproblems:problem_spec list ->
  Dpm.t
(** Bind each requirement property to its initial value, build the
    top-level problem (owner [leader], the requirements as {e inputs} so
    simulated designers cannot relax them, the system constraints as its
    T), register one leaf subproblem per spec, and return the DPM. *)

val continuous : Network.t -> string -> float -> float -> unit
(** Shorthand: add a continuous property. *)

val le : Network.t -> string -> Expr.t -> Expr.t -> Constr.t
val ge : Network.t -> string -> Expr.t -> Expr.t -> Constr.t
val eq : Network.t -> string -> Expr.t -> Expr.t -> Constr.t
