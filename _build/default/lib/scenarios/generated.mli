(** Randomly generated collaborative-design scenarios.

    The paper's two cases are fixed points in problem-size space; its
    conclusion extrapolates — "for more complex design problems ADPM may
    provide a more substantial design process acceleration for a
    proportionally smaller computational penalty". This generator produces
    structurally similar scenarios of arbitrary size so the scaling
    experiment can test that claim: [n] subsystems in a ring, each with [k]
    free design parameters, a tool-computed power and gain per subsystem
    (linear models with random coefficients plus accuracy bands), a global
    power budget, and per-edge gain floors coupling neighbouring
    subsystems.

    Every instance is satisfiable by construction: requirements are derived
    from a nominal witness point with controlled slack. *)

open Adpm_core
open Adpm_teamsim

type params = {
  g_subsystems : int;  (** >= 2 *)
  g_vars_per_subsystem : int;  (** >= 1 *)
  g_seed : int;  (** generator seed: same seed, same network *)
  g_slack : float;
      (** requirement slack around the witness, e.g. 0.15 = 15% *)
}

val default_params : subsystems:int -> vars:int -> params
(** Seed 0, slack 0.15. *)

val build : params -> mode:Dpm.mode -> Dpm.t
val scenario : params -> Scenario.t
(** Named ["generated-<n>x<k>"]. *)

val property_count : params -> int
(** Numeric properties the instance will have (for reporting). *)

val constraint_count : params -> int
