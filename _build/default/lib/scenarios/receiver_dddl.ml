let source =
  {|
// The MEMS-based wireless receiver front-end (Section 3.2) in DDDL:
// 35 properties, 30 mostly non-linear constraints. The exact twin of the
// OCaml-built Receiver scenario (tests assert identical simulations).
scenario receiver_dddl {
  // analog free variables
  property "diff-pair-w"   : real [2.5, 10];
  property "freq-ind"      : real [0.05, 0.5];
  property "bias-current"  : real [1, 10];
  property "load-res"      : real [0.1, 2];
  property "mixer-gm"      : real [1, 20];
  property "mixer-bias"    : real [0.5, 5];
  // analog performance parameters
  property "lna-gain"      : real [1, 300];
  property "lna-power"     : real [10, 400];
  property "lna-zin"       : real [10, 200];
  property "mixer-gain"    : real [0.5, 40];
  property "mixer-power"   : real [1, 100];
  // filter free variables
  property "beam-length"   : real [5, 50];
  property "beam-width"    : real [0.5, 5];
  property "beam-thickness": real [0.5, 4];
  property gap             : real [0.1, 2];
  property "resonator-q"   : real [100, 10000];
  property "drive-v"       : real [1, 50];
  // filter performance parameters
  property "center-freq"   : real [10, 500];
  property "filter-bw"     : real [0.05, 5];
  property "insertion-att" : real [1, 10];
  property "filter-power"  : real [0.01, 10];
  property "freq-precision": real [0.05, 5];
  // requirements
  property "req-gain"      : real [10, 4000];
  property "req-power"     : real [50, 400];
  property "req-zin-min"   : real [10, 100];
  property "req-zin-max"   : real [50, 200];
  property "req-bw-min"    : real [0.1, 2];
  property "req-bw-max"    : real [0.5, 3];
  property "req-freq"      : real [50, 200];
  property "req-freq-tol"  : real [1, 20];
  property "req-prec-max"  : real [0.5, 5];
  property "req-att-max"   : real [1.1, 5];
  property "req-ind-max"   : real [0.1, 1];
  property "req-drive-max" : real [5, 50];
  property "req-mixer-gain": real [1, 20];

  // analog model bands (non-linear)
  constraint "LNAGain-lo" :
    "lna-gain" >= 0.85 * (10 * sqrt("bias-current" * "diff-pair-w") * "load-res");
  constraint "LNAGain-hi" :
    "lna-gain" <= 1.15 * (10 * sqrt("bias-current" * "diff-pair-w") * "load-res");
  constraint "LNAPower-lo" :
    "lna-power" >= 0.9 * (30 * "bias-current" + 5 * "diff-pair-w");
  constraint "LNAZin-lo" :
    "lna-zin" >= 0.9 * (500 * "freq-ind" / sqrt("diff-pair-w"));
  constraint "LNAZin-hi" :
    "lna-zin" <= 1.1 * (500 * "freq-ind" / sqrt("diff-pair-w"));
  constraint "MixerGain-lo" : "mixer-gain" >= 1.275 * "mixer-gm";
  constraint "MixerGain-hi" : "mixer-gain" <= 1.725 * "mixer-gm";
  constraint "MixerPower-lo" : "mixer-power" >= 10.8 * "mixer-bias";

  // filter model bands (non-linear)
  constraint "CenterFreq-lo" :
    "center-freq" >= 0.92 * (5650 * "beam-width" * sqrt("beam-thickness") / "beam-length"^2);
  constraint "CenterFreq-hi" :
    "center-freq" <= 1.08 * (5650 * "beam-width" * sqrt("beam-thickness") / "beam-length"^2);
  constraint "FilterBW-lo" :
    "filter-bw" >= 0.85 * (20 * "center-freq" / "resonator-q");
  constraint "FilterBW-hi" :
    "filter-bw" <= 1.15 * (20 * "center-freq" / "resonator-q");
  constraint "FilterLoss-lo" :
    "insertion-att" >= 0.85 * (1 + 300 * gap^2 / ("beam-width" * "beam-thickness") / sqrt("resonator-q"));
  constraint "FilterLoss-hi" :
    "insertion-att" <= 1.15 * (1 + 300 * gap^2 / ("beam-width" * "beam-thickness") / sqrt("resonator-q"));
  constraint "FilterPower-lo" :
    "filter-power" >= 0.8 * (0.02 * "drive-v"^2 / gap);
  constraint "FreqPrec-lo" :
    "freq-precision" >= 0.8 * (50 * gap / "beam-length");
  constraint "FreqPrec-hi" :
    "freq-precision" <= 1.2 * (50 * gap / "beam-length");

  // system constraints
  constraint TotalGain : "lna-gain" * "mixer-gain" >= "req-gain" * "insertion-att";
  constraint TotalPower :
    "lna-power" + "mixer-power" + "filter-power" <= "req-power";
  constraint "ZinWindow-lo" : "lna-zin" >= "req-zin-min";
  constraint "ZinWindow-hi" : "lna-zin" <= "req-zin-max";
  constraint "ChannelFreq-lo" : "center-freq" >= "req-freq" - "req-freq-tol";
  constraint "ChannelFreq-hi" : "center-freq" <= "req-freq" + "req-freq-tol";
  constraint "ChannelBW-lo" : "filter-bw" >= "req-bw-min";
  constraint "ChannelBW-hi" : "filter-bw" <= "req-bw-max";
  constraint FreqPrecision : "freq-precision" <= "req-prec-max";
  constraint InsertionLoss : "insertion-att" <= "req-att-max";
  constraint MaxFreqInd : "freq-ind" <= "req-ind-max";
  constraint MaxDrive : "drive-v" <= "req-drive-max";
  constraint MixerGainReq : "mixer-gain" >= "req-mixer-gain";

  // the synthesis tools' models (band centres)
  model "lna-gain"       = 10 * sqrt("bias-current" * "diff-pair-w") * "load-res";
  model "lna-power"      = 30 * "bias-current" + 5 * "diff-pair-w";
  model "lna-zin"        = 500 * "freq-ind" / sqrt("diff-pair-w");
  model "mixer-gain"     = 1.5 * "mixer-gm";
  model "mixer-power"    = 12 * "mixer-bias";
  model "center-freq"    = 5650 * "beam-width" * sqrt("beam-thickness") / "beam-length"^2;
  model "filter-bw"      = 20 * "center-freq" / "resonator-q";
  model "insertion-att"  = 1 + 300 * gap^2 / ("beam-width" * "beam-thickness") / sqrt("resonator-q");
  model "filter-power"   = 0.02 * "drive-v"^2 / gap;
  model "freq-precision" = 50 * gap / "beam-length";

  requirement "req-gain" = 30;
  requirement "req-power" = 190;
  requirement "req-zin-min" = 45;
  requirement "req-zin-max" = 75;
  requirement "req-bw-min" = 0.85;
  requirement "req-bw-max" = 1.15;
  requirement "req-freq" = 100;
  requirement "req-freq-tol" = 6;
  requirement "req-prec-max" = 2.2;
  requirement "req-att-max" = 1.7;
  requirement "req-ind-max" = 0.5;
  requirement "req-drive-max" = 25;
  requirement "req-mixer-gain" = 5;

  object "LNA+Mixer" {
    properties: "diff-pair-w", "freq-ind", "bias-current", "load-res",
      "mixer-gm", "mixer-bias", "lna-gain", "lna-power", "lna-zin",
      "mixer-gain", "mixer-power";
  }
  object "MEMS-Filter" {
    properties: "beam-length", "beam-width", "beam-thickness", gap,
      "resonator-q", "drive-v", "center-freq", "filter-bw", "insertion-att",
      "filter-power", "freq-precision";
  }

  problem "receiver-front-end" owner leader {
    inputs: "req-gain", "req-power", "req-zin-min", "req-zin-max",
      "req-bw-min", "req-bw-max", "req-freq", "req-freq-tol", "req-prec-max",
      "req-att-max", "req-ind-max", "req-drive-max", "req-mixer-gain";
    constraints: TotalGain, TotalPower, "ZinWindow-lo", "ZinWindow-hi",
      "ChannelFreq-lo", "ChannelFreq-hi", "ChannelBW-lo", "ChannelBW-hi",
      FreqPrecision, InsertionLoss, MaxFreqInd, MaxDrive, MixerGainReq;
    subproblem analog owner circuit {
      inputs: "req-gain", "req-power", "req-zin-min", "req-zin-max";
      outputs: "diff-pair-w", "freq-ind", "bias-current", "load-res",
        "mixer-gm", "mixer-bias", "lna-gain", "lna-power", "lna-zin",
        "mixer-gain", "mixer-power";
      constraints: "LNAGain-lo", "LNAGain-hi", "LNAPower-lo", "LNAZin-lo",
        "LNAZin-hi", "MixerGain-lo", "MixerGain-hi", "MixerPower-lo";
      object: "LNA+Mixer";
    }
    subproblem "mems-filter" owner device {
      inputs: "req-freq", "req-freq-tol", "req-bw-min", "req-bw-max";
      outputs: "beam-length", "beam-width", "beam-thickness", gap,
        "resonator-q", "drive-v", "center-freq", "filter-bw",
        "insertion-att", "filter-power", "freq-precision";
      constraints: "CenterFreq-lo", "CenterFreq-hi", "FilterBW-lo",
        "FilterBW-hi", "FilterLoss-lo", "FilterLoss-hi", "FilterPower-lo",
        "FreqPrec-lo", "FreqPrec-hi";
      object: "MEMS-Filter";
    }
  }
}
|}

let scenario = Adpm_dddl.Elaborate.load_string source
