(** The pressure-sensor case written in DDDL — the exact twin of {!Sensor}
    (tests assert identical simulations). *)

val source : string
val scenario : Adpm_teamsim.Scenario.t
