open Adpm_interval
open Adpm_csp
open Adpm_core

type problem_spec = {
  ps_name : string;
  ps_owner : string;
  ps_inputs : string list;
  ps_outputs : string list;
  ps_constraints : Constr.t list;
  ps_object : string option;
}

let continuous net name lo hi = Network.add_prop net name (Domain.continuous lo hi)

let le net name lhs rhs = Network.add_constraint net ~name lhs Constr.Le rhs
let ge net name lhs rhs = Network.add_constraint net ~name lhs Constr.Ge rhs
let eq net name lhs rhs = Network.add_constraint net ~name lhs Constr.Eq rhs

let assemble ~mode ~net ~objects ~top_name ~leader ~requirements
    ~system_constraints ~subproblems =
  List.iter
    (fun (name, value) -> Network.assign net name (Value.Num value))
    requirements;
  let top =
    Problem.make ~id:0 ~name:top_name ~owner:leader
      ~inputs:(List.map fst requirements)
      ~constraints:(List.map (fun c -> c.Constr.id) system_constraints)
      ()
  in
  let dpm = Dpm.create ~mode net ~objects ~top in
  List.iteri
    (fun i spec ->
      let p =
        Problem.make ~id:(i + 1) ~name:spec.ps_name ~owner:spec.ps_owner
          ~inputs:spec.ps_inputs ~outputs:spec.ps_outputs
          ~constraints:(List.map (fun c -> c.Constr.id) spec.ps_constraints)
          ?object_name:spec.ps_object ()
      in
      Dpm.register_problem dpm ~parent:(Some 0) p)
    subproblems;
  dpm
