(** The simplified design case expressed in DDDL.

    Exactly the network of {!Simple}, written in the scenario-description
    language instead of OCaml — used by the quickstart example and by the
    tests that check the DDDL pipeline (lexer, parser, elaborator) builds
    the same design process. *)

val source : string
(** The DDDL text. *)

val scenario : Adpm_teamsim.Scenario.t
(** [Elaborate.load_string source]. *)
