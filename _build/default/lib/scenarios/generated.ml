open Adpm_util
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim

type params = {
  g_subsystems : int;
  g_vars_per_subsystem : int;
  g_seed : int;
  g_slack : float;
}

let default_params ~subsystems ~vars =
  { g_subsystems = subsystems; g_vars_per_subsystem = vars; g_seed = 0;
    g_slack = 0.15 }

let validate p =
  if p.g_subsystems < 2 then invalid_arg "Generated: need >= 2 subsystems";
  if p.g_vars_per_subsystem < 1 then invalid_arg "Generated: need >= 1 var";
  if p.g_slack <= 0. then invalid_arg "Generated: slack must be positive"

let var_name i j = Printf.sprintf "x%d_%d" i j
let power_name i = Printf.sprintf "power%d" i
let gain_name i = Printf.sprintf "gain%d" i
let gmin_name e = Printf.sprintf "gmin%d" e

let ring_edges n =
  if n = 2 then [ (0, 1) ] else List.init n (fun i -> (i, (i + 1) mod n))

let property_count p =
  validate p;
  let n = p.g_subsystems and k = p.g_vars_per_subsystem in
  (n * (k + 2)) + 1 + List.length (ring_edges n)

let constraint_count p =
  validate p;
  let n = p.g_subsystems in
  (2 * n) + 1 + List.length (ring_edges n)

(* Per-instance structure: the random coefficients of each subsystem's
   power and gain models, derived deterministically from the seed. *)
type instance = {
  i_power_base : float array;  (* per subsystem *)
  i_power_coeff : float array array;  (* per subsystem, per var *)
  i_gain_coeff : float array array;
}

let instance p =
  let rng = Rng.create (0x9e37 + p.g_seed) in
  let n = p.g_subsystems and k = p.g_vars_per_subsystem in
  {
    i_power_base = Array.init n (fun _ -> Rng.float_range rng 1. 3.);
    i_power_coeff =
      Array.init n (fun _ -> Array.init k (fun _ -> Rng.float_range rng 0.3 1.0));
    i_gain_coeff =
      Array.init n (fun _ -> Array.init k (fun _ -> Rng.float_range rng 0.4 1.2));
  }

let witness_value = 5.

let power_model inst i k =
  Expr.sum
    (Expr.const inst.i_power_base.(i)
    :: List.init k (fun j ->
           Expr.scale inst.i_power_coeff.(i).(j) (Expr.var (var_name i j))))

let gain_model inst i k =
  Expr.sum
    (List.init k (fun j ->
         Expr.scale inst.i_gain_coeff.(i).(j) (Expr.var (var_name i j))))

let power_at_witness inst i k =
  inst.i_power_base.(i)
  +. (witness_value *. Array.fold_left ( +. ) 0. inst.i_power_coeff.(i))
  |> fun x ->
  ignore k;
  x

let gain_at_witness inst i =
  witness_value *. Array.fold_left ( +. ) 0. inst.i_gain_coeff.(i)

let models p =
  validate p;
  let inst = instance p in
  let n = p.g_subsystems and k = p.g_vars_per_subsystem in
  List.concat
    (List.init n (fun i ->
         [ (power_name i, power_model inst i k); (gain_name i, gain_model inst i k) ]))

let build p ~mode =
  validate p;
  let inst = instance p in
  let n = p.g_subsystems and k = p.g_vars_per_subsystem in
  let net = Network.create () in
  let open Builder in
  for i = 0 to n - 1 do
    for j = 0 to k - 1 do
      continuous net (var_name i j) 0. 10.
    done;
    let p_max =
      inst.i_power_base.(i)
      +. (10. *. Array.fold_left ( +. ) 0. inst.i_power_coeff.(i))
    in
    continuous net (power_name i) 0. (p_max +. 1.);
    let g_max = 10. *. Array.fold_left ( +. ) 0. inst.i_gain_coeff.(i) in
    continuous net (gain_name i) 0. (g_max +. 1.)
  done;
  let edges = ring_edges n in
  let total_power_witness =
    List.fold_left ( +. ) 0.
      (List.init n (fun i -> power_at_witness inst i k))
  in
  let budget = total_power_witness *. (1. +. p.g_slack) in
  continuous net "p_budget" 1. (budget *. 2.);
  List.iteri
    (fun e (a, b) ->
      let floor_v =
        (gain_at_witness inst a +. gain_at_witness inst b) *. (1. -. p.g_slack)
      in
      continuous net (gmin_name e) 0.1 (floor_v *. 2.))
    edges;
  (* model bands: power from below (the budget pushes it down), gain from
     above (the floors push it up) *)
  let band_constraints =
    List.concat
      (List.init n (fun i ->
           [
             ge net (Printf.sprintf "PowerBand%d" i)
               (Expr.var (power_name i))
               Expr.(power_model inst i k - const 0.5);
             le net (Printf.sprintf "GainBand%d" i)
               (Expr.var (gain_name i))
               Expr.(gain_model inst i k + const 0.4);
           ]))
  in
  let total_power =
    le net "TotalPower"
      (Expr.sum (List.init n (fun i -> Expr.var (power_name i))))
      (Expr.var "p_budget")
  in
  let gain_floors =
    List.mapi
      (fun e (a, b) ->
        ge net (Printf.sprintf "GainFloor%d" e)
          Expr.(Expr.var (gain_name a) + Expr.var (gain_name b))
          (Expr.var (gmin_name e)))
      edges
  in
  let objects =
    List.init n (fun i ->
        Design_object.make
          ~name:(Printf.sprintf "Subsystem%d" i)
          ~properties:
            (List.init k (var_name i) @ [ power_name i; gain_name i ])
          ())
  in
  let requirements =
    ("p_budget", budget)
    :: List.mapi
         (fun e (a, b) ->
           ( gmin_name e,
             (gain_at_witness inst a +. gain_at_witness inst b)
             *. (1. -. p.g_slack) ))
         edges
  in
  let subproblems =
    List.init n (fun i ->
        let bands =
          List.filteri
            (fun idx _ -> idx = 2 * i || idx = (2 * i) + 1)
            band_constraints
        in
        {
          ps_name = Printf.sprintf "subsystem-%d" i;
          ps_owner = Printf.sprintf "designer%d" i;
          ps_inputs = [ "p_budget" ];
          ps_outputs =
            List.init k (var_name i) @ [ power_name i; gain_name i ];
          ps_constraints = bands;
          ps_object = Some (Printf.sprintf "Subsystem%d" i);
        })
  in
  assemble ~mode ~net ~objects
    ~top_name:(Printf.sprintf "generated-%dx%d" n k)
    ~leader:"leader" ~requirements
    ~system_constraints:(total_power :: gain_floors)
    ~subproblems

let scenario p =
  validate p;
  Scenario.make
    ~name:(Printf.sprintf "generated-%dx%d" p.g_subsystems p.g_vars_per_subsystem)
    ~description:
      (Printf.sprintf
         "generated ring scenario: %d subsystems, %d parameters each, seed %d"
         p.g_subsystems p.g_vars_per_subsystem p.g_seed)
    ~models:(models p)
    (fun ~mode -> build p ~mode)
