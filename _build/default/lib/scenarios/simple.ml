open Adpm_expr
open Adpm_core
open Adpm_teamsim

let build ?(p_max = 19.) ?(g_min = 14.5) () ~mode =
  let net = Adpm_csp.Network.create () in
  let open Builder in
  continuous net "xa1" 0. 10.;
  continuous net "xa2" 0. 10.;
  continuous net "pa" 0. 20.;
  continuous net "ga" 0. 25.;
  continuous net "xb1" 0. 10.;
  continuous net "xb2" 0. 10.;
  continuous net "pb" 0. 20.;
  continuous net "gb" 0. 15.;
  continuous net "p_max" 5. 40.;
  continuous net "g_min" 1. 30.;
  let v = Expr.var and c = Expr.const in
  let pa_model = Expr.(c 4. + scale 0.8 (v "xa1") + scale 0.6 (v "xa2")) in
  let ga_model = Expr.(scale 1.5 (v "xa1") + scale 0.5 (v "xa2")) in
  let pb_model = Expr.(c 2. + scale 0.5 (v "xb1") + scale 0.7 (v "xb2")) in
  let gb_model = Expr.(v "xb1" + scale 0.3 (v "xb2")) in
  (* model bands: the synthesis tool's accuracy tolerance *)
  let a_pow_lo = ge net "A-power-lo" (v "pa") Expr.(pa_model - c 0.5) in
  let a_pow_hi = le net "A-power-hi" (v "pa") Expr.(pa_model + c 0.5) in
  let a_gain_lo = ge net "A-gain-lo" (v "ga") Expr.(ga_model - c 0.4) in
  let a_gain_hi = le net "A-gain-hi" (v "ga") Expr.(ga_model + c 0.4) in
  let b_pow_lo = ge net "B-power-lo" (v "pb") Expr.(pb_model - c 0.5) in
  let b_pow_hi = le net "B-power-hi" (v "pb") Expr.(pb_model + c 0.5) in
  let b_gain_lo = ge net "B-gain-lo" (v "gb") Expr.(gb_model - c 0.3) in
  let b_gain_hi = le net "B-gain-hi" (v "gb") Expr.(gb_model + c 0.3) in
  (* cross-subsystem budgets: the conflicts integration would find late *)
  let s_power = le net "TotalPower" Expr.(v "pa" + v "pb") (v "p_max") in
  let s_gain = ge net "TotalGain" Expr.(v "ga" + v "gb") (v "g_min") in
  let s_balance =
    le net "GainBalance" (v "ga") Expr.(scale 2.5 (v "gb") + c 5.)
  in
  let objects =
    [
      Design_object.make ~name:"SubsystemA"
        ~properties:[ "xa1"; "xa2"; "pa"; "ga" ] ();
      Design_object.make ~name:"SubsystemB"
        ~properties:[ "xb1"; "xb2"; "pb"; "gb" ] ();
    ]
  in
  assemble ~mode ~net ~objects ~top_name:"system" ~leader:"leader"
    ~requirements:[ ("p_max", p_max); ("g_min", g_min) ]
    ~system_constraints:[ s_power; s_gain; s_balance ]
    ~subproblems:
      [
        {
          ps_name = "subsystem-A";
          ps_owner = "alice";
          ps_inputs = [ "p_max"; "g_min" ];
          ps_outputs = [ "xa1"; "xa2"; "pa"; "ga" ];
          ps_constraints = [ a_pow_lo; a_pow_hi; a_gain_lo; a_gain_hi ];
          ps_object = Some "SubsystemA";
        };
        {
          ps_name = "subsystem-B";
          ps_owner = "bob";
          ps_inputs = [ "p_max"; "g_min" ];
          ps_outputs = [ "xb1"; "xb2"; "pb"; "gb" ];
          ps_constraints = [ b_pow_lo; b_pow_hi; b_gain_lo; b_gain_hi ];
          ps_object = Some "SubsystemB";
        };
      ]

(* models the synthesis tools evaluate (band centres) *)
let models =
  let v = Expr.var and c = Expr.const in
  [
    ("pa", Expr.(c 4. + scale 0.8 (v "xa1") + scale 0.6 (v "xa2")));
    ("ga", Expr.(scale 1.5 (v "xa1") + scale 0.5 (v "xa2")));
    ("pb", Expr.(c 2. + scale 0.5 (v "xb1") + scale 0.7 (v "xb2")));
    ("gb", Expr.(v "xb1" + scale 0.3 (v "xb2")));
  ]

let scenario =
  Scenario.make ~name:"simple"
    ~description:"two-subsystem simplified case (Fig. 7)" ~models
    (fun ~mode -> build () ~mode)
