let source =
  {|
// The simplified two-subsystem case of Fig. 7, in DDDL.
// Two designers (alice, bob) develop subsystems A and B concurrently;
// the leader owns the system problem with the cross-subsystem budgets.
scenario simple_dddl {
  property xa1 : real [0, 10];
  property xa2 : real [0, 10];
  property pa  : real [0, 20];
  property ga  : real [0, 25];
  property xb1 : real [0, 10];
  property xb2 : real [0, 10];
  property pb  : real [0, 20];
  property gb  : real [0, 15];
  property p_max : real [5, 40];
  property g_min : real [1, 30];

  /* model bands: the synthesis tool's accuracy tolerance */
  constraint A_power_lo : pa >= 4.0 + 0.8*xa1 + 0.6*xa2 - 0.5;
  constraint A_power_hi : pa <= 4.0 + 0.8*xa1 + 0.6*xa2 + 0.5;
  constraint A_gain_lo  : ga >= 1.5*xa1 + 0.5*xa2 - 0.4;
  constraint A_gain_hi  : ga <= 1.5*xa1 + 0.5*xa2 + 0.4;
  constraint B_power_lo : pb >= 2.0 + 0.5*xb1 + 0.7*xb2 - 0.5;
  constraint B_power_hi : pb <= 2.0 + 0.5*xb1 + 0.7*xb2 + 0.5;
  constraint B_gain_lo  : gb >= xb1 + 0.3*xb2 - 0.3;
  constraint B_gain_hi  : gb <= xb1 + 0.3*xb2 + 0.3;

  // cross-subsystem budgets, with declared monotonicity as in the paper's
  // DDDL example ("filter loss constraints are monotonic decreasing in the
  // resonator length, but monotonic increasing in the beam width")
  constraint TotalPower : pa + pb <= p_max {
    monotone decreasing in pa;
    monotone decreasing in pb;
  }
  constraint TotalGain : ga + gb >= g_min {
    monotone increasing in ga;
    monotone increasing in gb;
  }
  constraint GainBalance : ga <= 2.5*gb + 5.0;

  model pa = 4.0 + 0.8*xa1 + 0.6*xa2;
  model ga = 1.5*xa1 + 0.5*xa2;
  model pb = 2.0 + 0.5*xb1 + 0.7*xb2;
  model gb = xb1 + 0.3*xb2;

  requirement p_max = 19.0;
  requirement g_min = 14.5;

  object SubsystemA { properties: xa1, xa2, pa, ga; }
  object SubsystemB { properties: xb1, xb2, pb, gb; }

  problem system owner leader {
    inputs: p_max, g_min;
    constraints: TotalPower, TotalGain, GainBalance;
    subproblem subsystem_A owner alice {
      inputs: p_max, g_min;
      outputs: xa1, xa2, pa, ga;
      constraints: A_power_lo, A_power_hi, A_gain_lo, A_gain_hi;
      object: SubsystemA;
    }
    subproblem subsystem_B owner bob {
      inputs: p_max, g_min;
      outputs: xb1, xb2, pb, gb;
      constraints: B_power_lo, B_power_hi, B_gain_lo, B_gain_hi;
      object: SubsystemB;
    }
  }
}
|}

let scenario = Adpm_dddl.Elaborate.load_string source
