(** The wireless-receiver case written in DDDL — the exact twin of
    {!Receiver} (tests assert identical simulations). *)

val source : string
val scenario : Adpm_teamsim.Scenario.t
