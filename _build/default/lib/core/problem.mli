(** Design problems.

    A design problem p_i = (I_i, O_i, T_i) (Section 2.1): input properties,
    output properties, and the constraints relating them. Problems form a
    decomposition hierarchy; each carries a status and an owner (the
    designer assigned to it). A problem whose declared dependencies are not
    yet solved has status [Waiting] and is skipped by the problem-selection
    function f_p. *)

type status = Open | Waiting | Solved

type t = private {
  pr_id : int;
  pr_name : string;
  mutable pr_owner : string;
  pr_inputs : string list;
  pr_outputs : string list;
  mutable pr_constraints : int list;  (** T_i: constraint ids *)
  mutable pr_parent : int option;
  mutable pr_children : int list;
  mutable pr_depends_on : int list;  (** problem-ordering declarations *)
  mutable pr_status : status;
  pr_object : string option;  (** design object realising this problem *)
}

val make :
  id:int ->
  name:string ->
  owner:string ->
  ?inputs:string list ->
  ?outputs:string list ->
  ?constraints:int list ->
  ?depends_on:int list ->
  ?object_name:string ->
  unit ->
  t

val set_owner : t -> string -> unit
val set_status : t -> status -> unit
val add_constraint_id : t -> int -> unit
val add_dependency : t -> int -> unit
val link_child : parent:t -> child:t -> unit
val is_leaf : t -> bool
val properties : t -> string list
(** Inputs followed by outputs, without duplicates. *)

val status_to_string : status -> string
val pp : Format.formatter -> t -> unit
