lib/core/browser.mli: Dpm
