lib/core/dpm.mli: Adpm_csp Adpm_interval Constr Design_object Heuristic_data Network Notify Operator Problem
