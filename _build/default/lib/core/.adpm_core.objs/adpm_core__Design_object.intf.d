lib/core/design_object.mli:
