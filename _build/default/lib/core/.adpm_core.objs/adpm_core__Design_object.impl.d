lib/core/design_object.ml: List Printf
