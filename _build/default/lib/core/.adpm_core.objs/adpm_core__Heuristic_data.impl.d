lib/core/heuristic_data.ml: Adpm_csp Adpm_interval Constr Domain Format List Network Value
