lib/core/notify.ml: Adpm_csp Adpm_interval Constr Domain List Printf Problem
