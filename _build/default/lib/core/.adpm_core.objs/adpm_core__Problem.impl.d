lib/core/problem.ml: Format List
