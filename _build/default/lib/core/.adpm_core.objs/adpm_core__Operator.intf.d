lib/core/operator.mli: Adpm_csp Format Value
