lib/core/notify.mli: Adpm_csp Adpm_interval Constr Domain Problem
