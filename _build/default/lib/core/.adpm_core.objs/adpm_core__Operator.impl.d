lib/core/operator.ml: Adpm_csp Format List Printf String Value
