lib/core/problem.mli: Format
