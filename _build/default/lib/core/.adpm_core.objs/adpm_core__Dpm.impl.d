lib/core/dpm.ml: Adpm_csp Adpm_interval Constr Design_object Domain Hashtbl Heuristic_data List Network Notify Operator Printf Problem Propagate String
