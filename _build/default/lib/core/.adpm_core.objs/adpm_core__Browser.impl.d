lib/core/browser.ml: Adpm_csp Adpm_interval Adpm_util Buffer Constr Design_object Domain Dpm List Network Printf String Table Value
