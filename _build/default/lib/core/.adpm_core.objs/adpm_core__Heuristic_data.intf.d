lib/core/heuristic_data.mli: Adpm_csp Adpm_interval Domain Format Network Value
