open Adpm_interval
open Adpm_csp
open Adpm_util

let value_or_unassigned net prop =
  match Network.assigned net prop with
  | Some v -> Value.to_string v
  | None -> "<No value assigned>"

let feasible_string dpm prop =
  let net = Dpm.network dpm in
  let shown =
    (* For bound properties the browser shows the constraint-margin window
       (assignment relaxed), as Fig. 2 does for Diff-pair-W. *)
    match (Dpm.mode dpm, Network.assigned net prop) with
    | Dpm.Adpm, Some _ -> Dpm.relaxed_feasible dpm prop
    | Dpm.Adpm, None | Dpm.Conventional, _ -> Network.feasible net prop
  in
  Domain.to_string shown

let object_browser dpm object_name =
  let net = Dpm.network dpm in
  let obj =
    match Dpm.find_object dpm object_name with
    | Some o -> o
    | None -> raise Not_found
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "Object name: %s\n" object_name);
  Buffer.add_string buf
    (Printf.sprintf "Version number: %s (current)\n"
       (Design_object.version_string obj));
  List.iter
    (fun prop ->
      if Network.mem_prop net prop then begin
        let p = Network.find_prop net prop in
        let levels =
          match List.assoc_opt "levels" p.Network.p_meta with
          | Some l -> Printf.sprintf "Abstraction Levels: %s" l
          | None -> ""
        in
        Buffer.add_string buf (Printf.sprintf "  %-14s %s\n" prop levels);
        if Domain.is_numeric p.Network.p_initial then
          Buffer.add_string buf
            (Printf.sprintf "      Consistent values: %s\n"
               (feasible_string dpm prop))
      end)
    obj.Design_object.o_properties;
  Buffer.contents buf

let property_browser dpm ~props =
  let net = Dpm.network dpm in
  let table = Table.create [ "Property"; "# c's"; "Value"; "Constraints" ] in
  Table.set_align table [ Table.Left; Table.Right; Table.Right; Table.Left ];
  List.iter
    (fun prop ->
      let connected = Network.constraints_of_prop net prop in
      Table.add_row table
        [
          prop;
          string_of_int (List.length connected);
          value_or_unassigned net prop;
          String.concat ", " (List.map (fun c -> c.Constr.name) connected);
        ])
    props;
  Table.render table

let conflict_browser dpm ~props =
  let net = Dpm.network dpm in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "CONSTRAINTS\n";
  let touched =
    List.sort_uniq compare
      (List.concat_map
         (fun prop ->
           List.map (fun c -> c.Constr.id) (Network.constraints_of_prop net prop))
         props)
  in
  List.iter
    (fun cid ->
      let c = Network.find_constraint net cid in
      Buffer.add_string buf
        (Printf.sprintf "  %-20s %s\n" c.Constr.name
           (Constr.status_to_string (Dpm.known_status dpm cid))))
    touched;
  Buffer.add_string buf "PROPERTIES\n";
  let table =
    Table.create [ "Property"; "# c's"; "Value"; "Object"; "Connected violations" ]
  in
  Table.set_align table
    [ Table.Left; Table.Right; Table.Right; Table.Left; Table.Right ];
  List.iter
    (fun prop ->
      let owner =
        List.find_opt
          (fun o -> Design_object.owns o prop)
          (Dpm.objects dpm)
      in
      let alpha =
        List.length
          (List.filter
             (fun c -> Dpm.known_status dpm c.Constr.id = Constr.Violated)
             (Network.constraints_of_prop net prop))
      in
      Table.add_row table
        [
          prop;
          string_of_int (Network.beta net prop);
          value_or_unassigned net prop;
          (match owner with Some o -> o.Design_object.o_name | None -> "");
          (if alpha = 0 then "" else string_of_int alpha);
        ])
    props;
  Buffer.add_string buf (Table.render table);
  Buffer.contents buf
