type status = Open | Waiting | Solved

type t = {
  pr_id : int;
  pr_name : string;
  mutable pr_owner : string;
  pr_inputs : string list;
  pr_outputs : string list;
  mutable pr_constraints : int list;
  mutable pr_parent : int option;
  mutable pr_children : int list;
  mutable pr_depends_on : int list;
  mutable pr_status : status;
  pr_object : string option;
}

let make ~id ~name ~owner ?(inputs = []) ?(outputs = []) ?(constraints = [])
    ?(depends_on = []) ?object_name () =
  {
    pr_id = id;
    pr_name = name;
    pr_owner = owner;
    pr_inputs = inputs;
    pr_outputs = outputs;
    pr_constraints = constraints;
    pr_parent = None;
    pr_children = [];
    pr_depends_on = depends_on;
    pr_status = Open;
    pr_object = object_name;
  }

let set_owner t owner = t.pr_owner <- owner
let set_status t status = t.pr_status <- status

let add_constraint_id t cid =
  if not (List.mem cid t.pr_constraints) then
    t.pr_constraints <- t.pr_constraints @ [ cid ]

let add_dependency t pid =
  if not (List.mem pid t.pr_depends_on) then
    t.pr_depends_on <- t.pr_depends_on @ [ pid ]

let link_child ~parent ~child =
  child.pr_parent <- Some parent.pr_id;
  if not (List.mem child.pr_id parent.pr_children) then
    parent.pr_children <- parent.pr_children @ [ child.pr_id ]

let is_leaf t = t.pr_children = []

let properties t =
  t.pr_inputs @ List.filter (fun o -> not (List.mem o t.pr_inputs)) t.pr_outputs

let status_to_string = function
  | Open -> "Open"
  | Waiting -> "Waiting"
  | Solved -> "Solved"

let pp ppf t =
  Format.fprintf ppf "%s[#%d, %s, owner=%s]" t.pr_name t.pr_id
    (status_to_string t.pr_status) t.pr_owner
