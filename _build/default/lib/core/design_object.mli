(** Design objects.

    A design object is a named set of properties representing a part of the
    design (Section 2.1). Objects form a hierarchy mirroring the problem
    decomposition — the "design object hierarchy" component of the design
    process state — and carry a version number that the DPM bumps whenever
    one of the object's properties is (re)assigned, as in the object browser
    of Fig. 2 ("Version number: 1.0.1"). *)

type t = private {
  o_name : string;
  o_properties : string list;
  o_children : string list;
  mutable o_version : int * int * int;
}

val make :
  ?children:string list -> name:string -> properties:string list -> unit -> t

val version_string : t -> string
(** "1.0.1"-style rendering. *)

val bump_patch : t -> unit
(** Record a property-value revision. *)

val bump_minor : t -> unit
(** Record a structural revision (e.g. re-decomposition). *)

val owns : t -> string -> bool
(** Does the object directly contain the property? *)
