open Adpm_csp

type subproblem_spec = {
  sp_name : string;
  sp_owner : string;
  sp_inputs : string list;
  sp_outputs : string list;
  sp_constraints : int list;
  sp_depends_on_names : string list;
  sp_object : string option;
}

type kind =
  | Synthesis of (string * Value.t) list
  | Verification of int list
  | Decompose of subproblem_spec list

type t = {
  op_designer : string;
  op_problem : int;
  op_kind : kind;
  op_motivated_by : int list;
}

let synthesis ?(motivated_by = []) ~designer ~problem assignments =
  { op_designer = designer; op_problem = problem; op_kind = Synthesis assignments;
    op_motivated_by = motivated_by }

let verification ?(motivated_by = []) ~designer ~problem cids =
  { op_designer = designer; op_problem = problem; op_kind = Verification cids;
    op_motivated_by = motivated_by }

let decompose ~designer ~problem specs =
  { op_designer = designer; op_problem = problem; op_kind = Decompose specs;
    op_motivated_by = [] }

let kind_label t =
  match t.op_kind with
  | Synthesis _ -> "synthesis"
  | Verification _ -> "verification"
  | Decompose _ -> "decompose"

let pp ppf t =
  let detail =
    match t.op_kind with
    | Synthesis assignments ->
      String.concat ", "
        (List.map
           (fun (p, v) -> Printf.sprintf "%s:=%s" p (Value.to_string v))
           assignments)
    | Verification cids ->
      Printf.sprintf "check {%s}" (String.concat "," (List.map string_of_int cids))
    | Decompose specs ->
      Printf.sprintf "into {%s}"
        (String.concat "," (List.map (fun s -> s.sp_name) specs))
  in
  Format.fprintf ppf "%s by %s on p#%d: %s" (kind_label t) t.op_designer
    t.op_problem detail
