(** Text renderings of Minerva III's browser windows.

    The paper illustrates ADPM's heuristic support with three user-interface
    views: the object browser showing value sets not found to be infeasible
    (Fig. 2), the constraint-and-property browser showing each property's
    constraint membership beta (Fig. 3), and the conflict-resolution view
    showing statuses and connected violations alpha (Fig. 4). These
    functions produce the equivalent plain-text views from the live design
    state. *)

val object_browser : Dpm.t -> string -> string
(** [object_browser dpm object_name]: Fig. 2 — the object's version and, for
    each of its numeric properties, the consistent (not found infeasible)
    value set. @raise Not_found for unknown objects. *)

val property_browser : Dpm.t -> props:string list -> string
(** Fig. 3 — each property with the number of constraints it appears in and
    the list of those constraints. *)

val conflict_browser : Dpm.t -> props:string list -> string
(** Fig. 4 — constraint statuses affecting the given properties, then a
    PROPERTIES pane with value, number of constraints, and connected
    violations per property. *)
