type t = {
  o_name : string;
  o_properties : string list;
  o_children : string list;
  mutable o_version : int * int * int;
}

let make ?(children = []) ~name ~properties () =
  { o_name = name; o_properties = properties; o_children = children;
    o_version = (1, 0, 0) }

let version_string t =
  let major, minor, patch = t.o_version in
  Printf.sprintf "%d.%d.%d" major minor patch

let bump_patch t =
  let major, minor, patch = t.o_version in
  t.o_version <- (major, minor, patch + 1)

let bump_minor t =
  let major, minor, _ = t.o_version in
  t.o_version <- (major, minor + 1, 0)

let owns t prop = List.mem prop t.o_properties
