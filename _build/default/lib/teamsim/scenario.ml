open Adpm_expr
open Adpm_core

type t = {
  sc_name : string;
  sc_description : string;
  sc_models : (string * Expr.t) list;
  sc_build : mode:Dpm.mode -> Dpm.t;
}

let make ~name ~description ?(models = []) build =
  {
    sc_name = name;
    sc_description = description;
    sc_models = models;
    sc_build = build;
  }
