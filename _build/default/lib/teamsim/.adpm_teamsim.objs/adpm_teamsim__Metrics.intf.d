lib/teamsim/metrics.mli: Adpm_core Dpm
