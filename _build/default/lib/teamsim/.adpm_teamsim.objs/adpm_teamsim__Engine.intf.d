lib/teamsim/engine.mli: Adpm_core Config Dpm Metrics Scenario
