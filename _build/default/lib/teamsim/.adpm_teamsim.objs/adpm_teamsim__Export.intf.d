lib/teamsim/export.mli: Metrics
