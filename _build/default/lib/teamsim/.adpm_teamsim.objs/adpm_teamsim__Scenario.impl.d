lib/teamsim/scenario.ml: Adpm_core Adpm_expr Dpm Expr
