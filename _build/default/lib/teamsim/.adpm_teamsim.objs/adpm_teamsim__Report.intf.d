lib/teamsim/report.mli: Adpm_core Adpm_util Dpm Metrics Stats_acc
