lib/teamsim/engine.ml: Adpm_core Adpm_csp Adpm_util Config Constr Designer Dpm List Metrics Operator Propagate Rng Scenario
