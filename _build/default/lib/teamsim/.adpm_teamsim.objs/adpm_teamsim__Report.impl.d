lib/teamsim/report.ml: Adpm_core Adpm_util Dpm List Metrics Printf Stats_acc String Table
