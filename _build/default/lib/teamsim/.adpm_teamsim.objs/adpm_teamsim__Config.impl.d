lib/teamsim/config.ml: Adpm_core Dpm
