lib/teamsim/scenario.mli: Adpm_core Adpm_expr Dpm Expr
