lib/teamsim/metrics.ml: Adpm_core Dpm List Printf
