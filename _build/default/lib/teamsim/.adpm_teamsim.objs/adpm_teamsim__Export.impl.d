lib/teamsim/export.ml: Adpm_core Buffer Char Dpm List Metrics Printf String
