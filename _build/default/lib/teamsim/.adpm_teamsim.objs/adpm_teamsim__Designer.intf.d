lib/teamsim/designer.mli: Adpm_core Adpm_expr Adpm_util Config Dpm Expr Operator Rng
