lib/teamsim/interactive.mli: Adpm_core Dpm Scenario
