lib/teamsim/config.mli: Adpm_core Dpm
