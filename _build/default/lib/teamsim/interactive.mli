(** Interactive design sessions.

    "Minerva III's interactive windows can also be viewed and used during
    simulations" (Section 3.1): here a human plays one designer while the
    remaining team members are simulated. The session exposes the same
    browsers the paper's figures show and executes operations through the
    same DPM the simulator uses; command parsing is pure string-in /
    string-out so clients (the CLI, tests) just feed lines. *)

open Adpm_core

type t

val create : mode:Dpm.mode -> seed:int -> Scenario.t -> designer:string -> t
(** Start a session playing [designer]. In ADPM mode the initial
    propagation runs immediately (as the engine would).
    @raise Invalid_argument if the scenario has no such designer. *)

val prompt : t -> string
(** Short status line for the prompt: mode, operations so far, known
    violations. *)

val finished : t -> bool
(** The top-level problem is solved. *)

val execute : t -> string -> (string, string) result
(** Run one command line; [Ok output] or [Error message]. Commands:

    - [help] — list commands
    - [status] — problems, own outputs with values, known violations
    - [browse OBJECT] — the Fig. 2 object browser
    - [props] — the Fig. 3 property browser over the player's properties
    - [conflicts] — the Fig. 4 conflict-resolution view
    - [set PROP VALUE] — synthesis operation (the tool recomputes dependent
      performance properties)
    - [verify] — request the verification the designer would issue now
    - [suggest] — show the operation the simulated designer model would
      pick, without executing it
    - [auto] — execute that operation
    - [step] — every other (simulated) team member takes one turn *)
