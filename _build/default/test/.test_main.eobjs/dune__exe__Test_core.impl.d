test/test_core.ml: Adpm_core Adpm_csp Adpm_expr Adpm_interval Alcotest Browser Constr Design_object Domain Dpm Expr Heuristic_data Interval List Network Notify Operator Problem String Value
