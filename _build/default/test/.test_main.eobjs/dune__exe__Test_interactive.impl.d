test/test_interactive.ml: Adpm_core Adpm_scenarios Adpm_teamsim Alcotest Config Dpm Engine Interactive List Lna Metrics Printf Receiver Receiver_dddl Sensor Sensor_dddl Simple String
