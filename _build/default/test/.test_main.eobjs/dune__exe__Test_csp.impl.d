test/test_csp.ml: Adpm_csp Adpm_expr Adpm_interval Adpm_util Alcotest Array Constr Domain Expr Fcsp Interval List Network Printf Propagate QCheck QCheck_alcotest Rng Search Value
