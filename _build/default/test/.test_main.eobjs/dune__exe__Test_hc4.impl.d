test/test_hc4.ml: Adpm_expr Adpm_interval Alcotest Expr Float Hc4 Interval List Printf QCheck QCheck_alcotest
