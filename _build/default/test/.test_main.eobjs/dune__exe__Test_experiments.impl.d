test/test_experiments.ml: Adpm_csp Adpm_experiments Alcotest Exp_ablation Exp_fig10 Exp_fig234 Exp_fig7 Exp_fig8 Exp_fig9 List String
