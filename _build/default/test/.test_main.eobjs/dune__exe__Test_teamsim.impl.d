test/test_teamsim.ml: Adpm_core Adpm_csp Adpm_expr Adpm_scenarios Adpm_teamsim Adpm_util Alcotest Config Dpm Engine List Metrics Network Printf Report Simple Stats_acc String
