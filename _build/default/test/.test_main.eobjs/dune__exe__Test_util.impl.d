test/test_util.ml: Adpm_util Alcotest Array Ascii_chart Float Gen List QCheck QCheck_alcotest Rng Stats_acc String Table
