test/test_expr.ml: Adpm_expr Adpm_interval Alcotest Deriv Expr Float Interval List Monotone QCheck QCheck_alcotest
