test/test_interval.ml: Adpm_interval Alcotest Domain Float Interval Printf QCheck QCheck_alcotest
