(* Tests for Adpm_expr: evaluation, simplification, differentiation,
   structural monotonicity, and HC4 revision soundness. *)

open Adpm_interval
open Adpm_expr

let e = Expr.Var "x"
let y = Expr.Var "y"
let check_float = Alcotest.(check (float 1e-9))

let env_of_list bindings name = List.assoc name bindings

(* {2 Evaluation} *)

let test_eval_point () =
  let expr =
    Expr.(Add (Mul (Const 2., Var "x"), Div (Var "y", Const 4.)))
  in
  check_float "2x + y/4" 8.5 (Expr.eval (env_of_list [ ("x", 3.); ("y", 10.) ]) expr)

let test_eval_functions () =
  let env = env_of_list [ ("x", 4.) ] in
  check_float "sqrt" 2. (Expr.eval env (Expr.Sqrt e));
  check_float "ln(exp x)" 4. (Expr.eval env (Expr.Ln (Expr.Exp e)));
  check_float "abs(-x)" 4. (Expr.eval env (Expr.Abs (Expr.Neg e)));
  check_float "min" 3. (Expr.eval env (Expr.Min (e, Expr.Const 3.)));
  check_float "max" 4. (Expr.eval env (Expr.Max (e, Expr.Const 3.)));
  check_float "pow" 64. (Expr.eval env (Expr.Pow (e, 3)))

let test_eval_opt () =
  let partial = function "x" -> Some 2. | _ -> None in
  Alcotest.(check (option (float 1e-9))) "bound" (Some 4.)
    (Expr.eval_opt partial Expr.(Mul (Var "x", Var "x")));
  Alcotest.(check (option (float 1e-9))) "unbound" None
    (Expr.eval_opt partial Expr.(Add (Var "x", Var "z")))

let test_vars_and_mentions () =
  let expr = Expr.(Add (Mul (Var "b", Var "a"), Sub (Var "a", Const 1.))) in
  Alcotest.(check (list string)) "vars in order" [ "b"; "a" ] (Expr.vars expr);
  Alcotest.(check bool) "mentions a" true (Expr.mentions expr "a");
  Alcotest.(check bool) "no c" false (Expr.mentions expr "c");
  Alcotest.(check int) "size" 7 (Expr.size expr)

let test_subst () =
  let expr = Expr.(Add (Var "x", Mul (Var "x", Var "y"))) in
  let substituted = Expr.subst expr "x" (Expr.Const 2.) in
  check_float "after subst" 8. (Expr.eval (env_of_list [ ("y", 3.) ]) substituted)

let test_simplify () =
  let open Expr in
  Alcotest.(check bool) "0 + x = x" true
    (equal (simplify (Add (Const 0., e))) e);
  Alcotest.(check bool) "x * 1 = x" true
    (equal (simplify (Mul (e, Const 1.))) e);
  Alcotest.(check bool) "x * 0 = 0" true
    (equal (simplify (Mul (e, Const 0.))) (Const 0.));
  Alcotest.(check bool) "x - 0 = x" true
    (equal (simplify (Sub (e, Const 0.))) e);
  Alcotest.(check bool) "neg neg" true (equal (simplify (Neg (Neg e))) e);
  Alcotest.(check bool) "constant folding" true
    (equal (simplify (Add (Const 2., Mul (Const 3., Const 4.)))) (Const 14.));
  Alcotest.(check bool) "pow 0" true (equal (simplify (Pow (e, 0))) (Const 1.));
  Alcotest.(check bool) "pow 1" true (equal (simplify (Pow (e, 1))) e)

let simplify_preserves_semantics =
  let gen_expr =
    QCheck.Gen.(
      sized
      @@ fix (fun self n ->
             if n <= 1 then
               oneof [ map (fun c -> Expr.Const c) (float_range (-10.) 10.);
                       oneofl [ Expr.Var "x"; Expr.Var "y" ] ]
             else
               let sub = self (n / 2) in
               oneof
                 [
                   map2 (fun a b -> Expr.Add (a, b)) sub sub;
                   map2 (fun a b -> Expr.Sub (a, b)) sub sub;
                   map2 (fun a b -> Expr.Mul (a, b)) sub sub;
                   map (fun a -> Expr.Neg a) sub;
                   map (fun a -> Expr.Abs a) sub;
                   map2 (fun a b -> Expr.Min (a, b)) sub sub;
                   map2 (fun a b -> Expr.Max (a, b)) sub sub;
                 ]))
  in
  QCheck.Test.make ~name:"simplify preserves point semantics" ~count:300
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun expr ->
      let env = env_of_list [ ("x", 1.7); ("y", -2.3) ] in
      let a = Expr.eval env expr and b = Expr.eval env (Expr.simplify expr) in
      (Float.is_nan a && Float.is_nan b) || abs_float (a -. b) <= 1e-6 *. (1. +. abs_float a))

let test_pp_roundtrip_examples () =
  Alcotest.(check string) "precedence" "x + y * x"
    (Expr.to_string Expr.(Add (e, Mul (y, e))));
  Alcotest.(check string) "parens" "(x + y) * x"
    (Expr.to_string Expr.(Mul (Add (e, y), e)));
  Alcotest.(check string) "functions" "sqrt(x + y)"
    (Expr.to_string Expr.(Sqrt (Add (e, y))))

(* {2 Deriv: symbolic derivative vs central finite differences} *)

let numeric_deriv f x0 =
  let h = 1e-6 *. (1. +. abs_float x0) in
  (f (x0 +. h) -. f (x0 -. h)) /. (2. *. h)

let test_deriv_cases () =
  let check_deriv name expr x0 =
    match Deriv.deriv expr "x" with
    | None -> Alcotest.fail (name ^ ": expected a derivative")
    | Some d ->
      let f v = Expr.eval (env_of_list [ ("x", v) ]) expr in
      let symbolic = Expr.eval (env_of_list [ ("x", x0) ]) d in
      let numeric = numeric_deriv f x0 in
      Alcotest.(check (float 1e-3)) name numeric symbolic
  in
  check_deriv "d(x^2)" (Expr.Pow (e, 2)) 3.;
  check_deriv "d(x^3)" (Expr.Pow (e, 3)) 1.5;
  check_deriv "d(sqrt x)" (Expr.Sqrt e) 2.;
  check_deriv "d(exp x)" (Expr.Exp e) 1.2;
  check_deriv "d(ln x)" (Expr.Ln e) 2.5;
  check_deriv "d(x * (x+1))" Expr.(Mul (e, Add (e, Const 1.))) 2.;
  check_deriv "d(1/x)" Expr.(Div (Const 1., e)) 2.;
  check_deriv "d(2x - x^2)" Expr.(Sub (Mul (Const 2., e), Pow (e, 2))) 0.7

let test_deriv_nonsmooth () =
  Alcotest.(check bool) "abs has no derivative in x" true
    (Deriv.deriv (Expr.Abs e) "x" = None);
  Alcotest.(check bool) "min has no derivative in x" true
    (Deriv.deriv (Expr.Min (e, Expr.Const 0.)) "x" = None);
  (* but when x does not appear under the non-smooth node it's fine *)
  (match Deriv.deriv Expr.(Add (e, Abs y)) "x" with
  | Some d ->
    check_float "d/dx (x + |y|) = 1" 1.
      (Expr.eval (env_of_list [ ("x", 0.); ("y", 5.) ]) d)
  | None -> Alcotest.fail "expected derivative")

let test_deriv_constant () =
  match Deriv.deriv (Expr.Const 5.) "x" with
  | Some d -> Alcotest.(check bool) "zero" true (Expr.equal d (Expr.Const 0.))
  | None -> Alcotest.fail "constant should differentiate"

(* {2 Monotone} *)

let box_env bindings name = List.assoc name bindings

let test_monotone_basic () =
  let env = box_env [ ("x", Interval.make 1. 5.); ("y", Interval.make 2. 3.) ] in
  let dir expr = Monotone.direction ~env expr "x" in
  Alcotest.(check string) "x increasing" "increasing"
    (Monotone.direction_to_string (dir e));
  Alcotest.(check string) "-x decreasing" "decreasing"
    (Monotone.direction_to_string (dir (Expr.Neg e)));
  Alcotest.(check string) "y constant in x" "constant"
    (Monotone.direction_to_string (dir y));
  Alcotest.(check string) "x*y increasing (y>0)" "increasing"
    (Monotone.direction_to_string (dir (Expr.Mul (e, y))));
  Alcotest.(check string) "x^2 increasing on [1,5]" "increasing"
    (Monotone.direction_to_string (dir (Expr.Pow (e, 2))));
  Alcotest.(check string) "sqrt x increasing" "increasing"
    (Monotone.direction_to_string (dir (Expr.Sqrt e)));
  Alcotest.(check string) "1/x decreasing (x>0)" "decreasing"
    (Monotone.direction_to_string (dir (Expr.Div (Expr.Const 1., e))))

let test_monotone_sign_dependence () =
  let env_neg = box_env [ ("x", Interval.make (-5.) (-1.)) ] in
  Alcotest.(check string) "x^2 decreasing on negatives" "decreasing"
    (Monotone.direction_to_string
       (Monotone.direction ~env:env_neg (Expr.Pow (e, 2)) "x"));
  let env_mixed = box_env [ ("x", Interval.make (-2.) 2.) ] in
  Alcotest.(check string) "x^2 unknown across zero" "unknown"
    (Monotone.direction_to_string
       (Monotone.direction ~env:env_mixed (Expr.Pow (e, 2)) "x"))

let test_monotone_combinators () =
  Alcotest.(check bool) "flip" true (Monotone.flip Monotone.Increasing = Monotone.Decreasing);
  Alcotest.(check bool) "combine same" true
    (Monotone.combine Monotone.Increasing Monotone.Increasing = Monotone.Increasing);
  Alcotest.(check bool) "combine mixed" true
    (Monotone.combine Monotone.Increasing Monotone.Decreasing = Monotone.Unknown);
  Alcotest.(check bool) "combine constant" true
    (Monotone.combine Monotone.Constant Monotone.Decreasing = Monotone.Decreasing)

(* Soundness: if the analysis says Increasing, sampling must never find a
   strictly decreasing pair (and dually). *)
let monotone_sound =
  let gen_expr =
    QCheck.Gen.(
      sized
      @@ fix (fun self n ->
             if n <= 1 then
               oneof
                 [ map (fun c -> Expr.Const c) (float_range 0.1 5.);
                   return (Expr.Var "x"); return (Expr.Var "y") ]
             else
               let sub = self (n / 2) in
               oneof
                 [
                   map2 (fun a b -> Expr.Add (a, b)) sub sub;
                   map2 (fun a b -> Expr.Sub (a, b)) sub sub;
                   map2 (fun a b -> Expr.Mul (a, b)) sub sub;
                   map (fun a -> Expr.Sqrt a) sub;
                   map (fun a -> Expr.Pow (a, 2)) sub;
                   map2 (fun a b -> Expr.Min (a, b)) sub sub;
                 ]))
  in
  QCheck.Test.make ~name:"monotone analysis is sound (sampling)" ~count:300
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun expr ->
      let xiv = Interval.make 0.5 4. and yiv = Interval.make 1. 2. in
      let env = box_env [ ("x", xiv); ("y", yiv) ] in
      match Monotone.direction ~env expr "x" with
      | Monotone.Unknown -> true
      | claimed ->
        let ok = ref true in
        for i = 0 to 8 do
          for j = 0 to 7 do
            let x1 = 0.5 +. (float_of_int i *. 3.5 /. 9.) in
            let x2 = x1 +. 0.3 in
            if x2 <= 4. then begin
              let yv = 1. +. (float_of_int j /. 7.) in
              let at x = Expr.eval (box_env [ ("x", x); ("y", yv) ]) expr in
              let v1 = at x1 and v2 = at x2 in
              if Float.is_finite v1 && Float.is_finite v2 then begin
                let tol = 1e-9 *. (1. +. Float.max (abs_float v1) (abs_float v2)) in
                match claimed with
                | Monotone.Increasing -> if v2 < v1 -. tol then ok := false
                | Monotone.Decreasing -> if v2 > v1 +. tol then ok := false
                | Monotone.Constant ->
                  if abs_float (v2 -. v1) > tol then ok := false
                | Monotone.Unknown -> ()
              end
            end
          done
        done;
        !ok)

let suite =
  [
    ("eval point", `Quick, test_eval_point);
    ("eval functions", `Quick, test_eval_functions);
    ("eval_opt", `Quick, test_eval_opt);
    ("vars and mentions", `Quick, test_vars_and_mentions);
    ("subst", `Quick, test_subst);
    ("simplify rules", `Quick, test_simplify);
    QCheck_alcotest.to_alcotest simplify_preserves_semantics;
    ("pretty printing", `Quick, test_pp_roundtrip_examples);
    ("derivatives vs finite differences", `Quick, test_deriv_cases);
    ("derivative of non-smooth nodes", `Quick, test_deriv_nonsmooth);
    ("derivative of constant", `Quick, test_deriv_constant);
    ("monotone basics", `Quick, test_monotone_basic);
    ("monotone sign dependence", `Quick, test_monotone_sign_dependence);
    ("monotone combinators", `Quick, test_monotone_combinators);
    QCheck_alcotest.to_alcotest monotone_sound;
  ]
