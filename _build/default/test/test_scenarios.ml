(* Tests for Adpm_scenarios: the published network statistics (26/21 for the
   sensor, 35/30 for the receiver), satisfiability witnesses, completion in
   both modes, and the Section 2.4 walkthrough numbers. *)

open Adpm_interval
open Adpm_csp
open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let count_props net =
  List.length
    (List.filter
       (fun n -> Domain.is_numeric (Network.initial_domain net n))
       (Network.prop_names net))

let test_sensor_statistics () =
  let dpm = Sensor.build () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Alcotest.(check int) "26 properties (paper: up to 26)" 26 (count_props net);
  Alcotest.(check int) "21 constraints (paper: up to 21)" 21
    (Network.constraint_count net);
  (* "most of them linear": count non-linear constraints *)
  let nonlinear =
    List.filter
      (fun c ->
        let rec nl e =
          match e with
          | Adpm_expr.Expr.Const _ | Adpm_expr.Expr.Var _ -> false
          | Adpm_expr.Expr.Neg a -> nl a
          | Adpm_expr.Expr.Add (a, b) | Adpm_expr.Expr.Sub (a, b) -> nl a || nl b
          | Adpm_expr.Expr.Mul (a, b) ->
            (Adpm_expr.Expr.vars a <> [] && Adpm_expr.Expr.vars b <> [])
            || nl a || nl b
          | Adpm_expr.Expr.Div (a, b) -> Adpm_expr.Expr.vars b <> [] || nl a || nl b
          | Adpm_expr.Expr.Pow (a, n) -> (n > 1 && Adpm_expr.Expr.vars a <> []) || nl a
          | Adpm_expr.Expr.Sqrt a | Adpm_expr.Expr.Exp a | Adpm_expr.Expr.Ln a ->
            Adpm_expr.Expr.vars a <> [] || nl a
          | Adpm_expr.Expr.Abs a -> nl a
          | Adpm_expr.Expr.Min (a, b) | Adpm_expr.Expr.Max (a, b) -> nl a || nl b
        in
        nl (Constr.diff c))
      (Network.constraints net)
  in
  Alcotest.(check bool) "mostly linear" true
    (List.length nonlinear * 2 < Network.constraint_count net)

let test_receiver_statistics () =
  let dpm = Receiver.build () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Alcotest.(check int) "35 properties (paper: up to 35)" 35 (count_props net);
  Alcotest.(check int) "30 constraints (paper: up to 30)" 30
    (Network.constraint_count net)

(* witnesses: a known-good assignment satisfies every constraint *)
let check_witness dpm witness =
  let net = Dpm.network dpm in
  List.iter (fun (p, x) -> Network.assign net p (Value.Num x)) witness;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "witness satisfies %s" c.Constr.name)
        true
        (Network.check_constraint_point net c))
    (Network.constraints net)

let test_sensor_witness () =
  check_witness
    (Sensor.build () ~mode:Dpm.Conventional)
    [
      ("radius", 500.); ("thickness", 5.); ("gap", 2.); ("base-cap", 6.);
      ("sensitivity", 1.1); ("max-pressure", 225.); ("sensor-noise", 1.2);
      ("yield", 84.); ("amp-gain", 20.); ("adc-bits", 12.); ("bias-current", 1.);
      ("circuit-noise", 3.4); ("interface-power", 6.6); ("offset", 1.);
    ]

let test_receiver_witness () =
  check_witness
    (Receiver.build () ~mode:Dpm.Conventional)
    [
      ("diff-pair-w", 4.); ("freq-ind", 0.2); ("bias-current", 4.);
      ("load-res", 1.); ("mixer-gm", 5.); ("mixer-bias", 2.);
      ("lna-gain", 40.); ("lna-power", 140.); ("lna-zin", 50.);
      ("mixer-gain", 7.5); ("mixer-power", 24.);
      ("beam-length", 13.); ("beam-width", 2.); ("beam-thickness", 2.25);
      ("gap", 0.5); ("resonator-q", 2000.); ("drive-v", 10.);
      ("center-freq", 100.); ("filter-bw", 1.); ("insertion-att", 1.37);
      ("filter-power", 4.); ("freq-precision", 1.9);
    ]

let test_scenarios_complete () =
  List.iter
    (fun (scenario, max_ops) ->
      List.iter
        (fun mode ->
          List.iter
            (fun seed ->
              let cfg = Config.default ~mode ~seed in
              let cfg = { cfg with Config.max_ops } in
              let outcome = Engine.run cfg scenario in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s seed %d completes"
                   scenario.Scenario.sc_name (Dpm.mode_to_string mode) seed)
                true outcome.Engine.o_summary.Metrics.s_completed)
            [ 1; 2; 3 ])
        [ Dpm.Conventional; Dpm.Adpm ])
    [ (Simple.scenario, 2000); (Sensor.scenario, 2000); (Receiver.scenario, 2000) ]

let test_lna_structure () =
  let dpm = Lna.build () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  Alcotest.(check int) "beta(Diff-pair-W) = 3 (paper, Fig. 3)" 3
    (Network.beta net Lna.diff_pair_w);
  Alcotest.(check int) "beta(Freq-ind) = 4" 4 (Network.beta net Lna.freq_ind);
  Alcotest.(check (list string)) "team" [ "leader"; "circuit"; "device" ]
    (Dpm.designers dpm)

let test_lna_simulation_completes () =
  List.iter
    (fun mode ->
      let cfg = Config.default ~mode ~seed:1 in
      let outcome = Engine.run cfg Lna.scenario in
      Alcotest.(check bool)
        (Printf.sprintf "lna/%s completes" (Dpm.mode_to_string mode))
        true outcome.Engine.o_summary.Metrics.s_completed)
    [ Dpm.Conventional; Dpm.Adpm ]

let test_receiver_tightness_monotone () =
  (* harder specs never make the conventional process cheaper on average
     (weak directional check at small sample size) *)
  let mean_ops req_gain =
    let scenario =
      Scenario.make ~name:"rx" ~description:""
        ~models:Receiver.scenario.Scenario.sc_models (fun ~mode ->
          Receiver.build ~req_gain () ~mode)
    in
    let cfg = Config.default ~mode:Dpm.Conventional ~seed:0 in
    let summaries = Engine.run_many cfg scenario ~seeds:[ 1; 2; 3 ] in
    List.fold_left (fun acc s -> acc + s.Metrics.s_operations) 0 summaries
  in
  let loose = mean_ops 30. and tight = mean_ops 2000. in
  Alcotest.(check bool) "tight spec costs at least as much" true (tight >= loose)

let suite =
  [
    ("sensor network statistics", `Quick, test_sensor_statistics);
    ("receiver network statistics", `Quick, test_receiver_statistics);
    ("sensor witness", `Quick, test_sensor_witness);
    ("receiver witness", `Quick, test_receiver_witness);
    ("all scenarios complete in both modes", `Slow, test_scenarios_complete);
    ("lna structure", `Quick, test_lna_structure);
    ("lna simulation completes", `Quick, test_lna_simulation_completes);
    ("receiver tightness direction", `Slow, test_receiver_tightness_monotone);
  ]
