(* Tests for Adpm_interval: interval arithmetic soundness (the inclusion
   property checked by sampling), inverse projections, and domains. *)

open Adpm_interval

let iv = Alcotest.testable Interval.pp Interval.equal
let check_float = Alcotest.(check (float 1e-9))

(* {2 Interval unit tests} *)

let test_make_validation () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (Interval.make 2. 1.));
  Alcotest.check_raises "nan" (Invalid_argument "Interval.make: NaN bound")
    (fun () -> ignore (Interval.make nan 1.))

let test_basic_queries () =
  let a = Interval.make 1. 3. in
  Alcotest.(check bool) "mem" true (Interval.mem 2. a);
  Alcotest.(check bool) "mem edge" true (Interval.mem 3. a);
  Alcotest.(check bool) "not mem" false (Interval.mem 3.1 a);
  check_float "width" 2. (Interval.width a);
  check_float "midpoint" 2. (Interval.midpoint a);
  Alcotest.(check bool) "point" true (Interval.is_point (Interval.of_point 5.));
  Alcotest.(check bool) "bounded" true (Interval.is_bounded a);
  Alcotest.(check bool) "full unbounded" false (Interval.is_bounded Interval.full)

let test_midpoint_unbounded () =
  check_float "full" 0. (Interval.midpoint Interval.full);
  check_float "right-unbounded" 3. (Interval.midpoint (Interval.make 3. infinity));
  check_float "left-unbounded" 7.
    (Interval.midpoint (Interval.make neg_infinity 7.))

let test_intersect_hull () =
  let a = Interval.make 0. 5. and b = Interval.make 3. 9. in
  Alcotest.(check (option iv)) "overlap" (Some (Interval.make 3. 5.))
    (Interval.intersect a b);
  Alcotest.(check (option iv)) "disjoint" None
    (Interval.intersect a (Interval.make 6. 7.));
  Alcotest.(check iv) "hull" (Interval.make 0. 9.) (Interval.hull a b);
  (* touching intervals intersect in a point *)
  Alcotest.(check (option iv)) "touching" (Some (Interval.of_point 5.))
    (Interval.intersect a (Interval.make 5. 8.))

let test_div_zero_straddle () =
  let z = Interval.div (Interval.make 1. 2.) (Interval.make (-1.) 1.) in
  Alcotest.(check iv) "straddling divisor gives full" Interval.full z;
  let pos = Interval.div (Interval.make 1. 2.) (Interval.make 0. 1.) in
  check_float "half-open divisor: lo" 1. (Interval.lo pos);
  Alcotest.(check bool) "half-open divisor: unbounded above" true
    (Interval.hi pos = infinity)

let test_pow_even_straddle () =
  let sq = Interval.pow_int (Interval.make (-2.) 3.) 2 in
  Alcotest.(check iv) "x^2 over [-2,3]" (Interval.make 0. 9.) sq

let test_partial_functions () =
  Alcotest.(check (option iv)) "sqrt of negative" None
    (Interval.sqrt_i (Interval.make (-3.) (-1.)));
  Alcotest.(check (option iv)) "sqrt clamps" (Some (Interval.make 0. 2.))
    (Interval.sqrt_i (Interval.make (-1.) 4.));
  Alcotest.(check (option iv)) "ln of nonpositive" None
    (Interval.ln_i (Interval.make (-1.) 0.));
  (match Interval.ln_i (Interval.make 0. Float.(exp 1.)) with
  | Some l ->
    Alcotest.(check bool) "ln lo = -inf" true (Interval.lo l = neg_infinity);
    check_float "ln hi = 1" 1. (Interval.hi l)
  | None -> Alcotest.fail "ln of [0,e] should be defined")

let test_certainty () =
  let a = Interval.make 0. 1. and b = Interval.make 2. 3. in
  Alcotest.(check bool) "certainly le" true (Interval.certainly_le a b);
  Alcotest.(check bool) "not certainly le" false (Interval.certainly_le b a);
  Alcotest.(check bool) "possibly le" true (Interval.possibly_le a b);
  Alcotest.(check bool) "possibly le (overlap)" true
    (Interval.possibly_le (Interval.make 0. 5.) (Interval.make 1. 2.));
  Alcotest.(check bool) "certainly eq points" true
    (Interval.certainly_eq (Interval.of_point 2.) (Interval.of_point 2.));
  Alcotest.(check bool) "possibly eq" true
    (Interval.possibly_eq (Interval.make 0. 2.) (Interval.make 1. 5.))

(* {2 Property-based inclusion tests}

   For each binary operation op and points x IN a, y IN b:
   (x op y) IN (a op b). *)

let gen_interval =
  QCheck.Gen.(
    let* a = float_range (-100.) 100. in
    let* b = float_range (-100.) 100. in
    return (Interval.make (Float.min a b) (Float.max a b)))

let arb_interval = QCheck.make ~print:Interval.to_string gen_interval

let gen_point_in a =
  QCheck.Gen.(
    let* t = float_range 0. 1. in
    return (Interval.lo a +. (t *. Interval.width a)))

let arb_pair_with_points =
  QCheck.make
    ~print:(fun (a, b, x, y) ->
      Printf.sprintf "%s %s x=%g y=%g" (Interval.to_string a)
        (Interval.to_string b) x y)
    QCheck.Gen.(
      let* a = gen_interval in
      let* b = gen_interval in
      let* x = gen_point_in a in
      let* y = gen_point_in b in
      return (a, b, x, y))

let tol = 1e-9

let mem_approx v res =
  Float.is_nan v
  || Interval.mem v (Interval.inflate (tol *. (1. +. abs_float v)) res)

let inclusion name op point_op =
  QCheck.Test.make ~name ~count:500 arb_pair_with_points (fun (a, b, x, y) ->
      mem_approx (point_op x y) (op a b))

let incl_add = inclusion "interval add inclusion" Interval.add ( +. )
let incl_sub = inclusion "interval sub inclusion" Interval.sub ( -. )
let incl_mul = inclusion "interval mul inclusion" Interval.mul ( *. )

let incl_div =
  QCheck.Test.make ~name:"interval div inclusion" ~count:500
    arb_pair_with_points (fun (a, b, x, y) ->
      y = 0. || mem_approx (x /. y) (Interval.div a b))

let incl_min = inclusion "interval min inclusion" Interval.min_i Float.min
let incl_max = inclusion "interval max inclusion" Interval.max_i Float.max

let incl_unary =
  QCheck.Test.make ~name:"interval unary inclusion (neg/abs/sq/exp)" ~count:500
    (QCheck.make
       ~print:(fun (a, x) -> Printf.sprintf "%s x=%g" (Interval.to_string a) x)
       QCheck.Gen.(
         let* a = gen_interval in
         let* x = gen_point_in a in
         return (a, x)))
    (fun (a, x) ->
      mem_approx (-.x) (Interval.neg a)
      && mem_approx (abs_float x) (Interval.abs_i a)
      && mem_approx (x *. x) (Interval.pow_int a 2)
      && mem_approx (x *. x *. x) (Interval.pow_int a 3)
      &&
      (* exp overflows for large x; restrict *)
      (abs_float x > 50. || mem_approx (exp x) (Interval.exp_i a)))

(* Inverse projections: if z = x + y with x IN a, y IN b, then
   x IN inv_add_left (a+b) b, etc. *)
let incl_inverse =
  QCheck.Test.make ~name:"inverse projections contain witnesses" ~count:500
    arb_pair_with_points (fun (a, b, x, y) ->
      let sum = Interval.add a b and diff = Interval.sub a b in
      let prod = Interval.mul a b in
      mem_approx x (Interval.inv_add_left sum b)
      && mem_approx x (Interval.inv_sub_left diff b)
      && mem_approx y (Interval.inv_sub_right diff a)
      && (Interval.mem 0. b || mem_approx x (Interval.inv_mul prod b)))

(* inv_pow is a sound preimage: x IN inv_pow_int (pow x n) n *)
let incl_pow_roundtrip =
  QCheck.Test.make ~name:"inv_pow contains the witness" ~count:500
    (QCheck.make
       ~print:(fun (a, x, n) ->
         Printf.sprintf "%s x=%g n=%d" (Interval.to_string a) x n)
       QCheck.Gen.(
         let* a = gen_interval in
         let* x = gen_point_in a in
         let* n = int_range 1 4 in
         return (a, x, n)))
    (fun (a, x, n) ->
      let z = Interval.pow_int a n in
      match Interval.inv_pow_int z n with
      | None -> false
      | Some pre -> mem_approx x pre)

(* refine always returns a subset of the original numeric domain *)
let refine_is_subset =
  QCheck.Test.make ~name:"Domain.refine contracts" ~count:500
    (QCheck.make
       ~print:(fun (lo, hi, a, b) -> Printf.sprintf "[%g,%g] refine [%g,%g]" lo hi a b)
       QCheck.Gen.(
         let* lo = float_range (-50.) 50. in
         let* w = float_range 0. 50. in
         let* a = float_range (-60.) 60. in
         let* wb = float_range 0. 60. in
         return (lo, lo +. w, a, a +. wb)))
    (fun (lo, hi, a, b) ->
      let d = Domain.continuous lo hi in
      match Domain.refine d (Interval.make a b) with
      | Domain.Empty -> true
      | refined ->
        Domain.measure refined <= Domain.measure d +. 1e-9
        && (match (Domain.lowest refined, Domain.highest refined) with
           | Some l, Some h -> l >= lo -. 1e-9 && h <= hi +. 1e-9
           | _ -> false))

(* {2 Domain} *)

let dom = Alcotest.testable Domain.pp Domain.equal

let test_domain_constructors () =
  Alcotest.(check dom) "finite sorts and dedups"
    (Domain.finite [ 3.; 1.; 2. ])
    (Domain.finite [ 2.; 1.; 3.; 1. ]);
  Alcotest.(check dom) "empty finite" Domain.Empty (Domain.finite []);
  Alcotest.(check dom) "empty symbolic" Domain.Empty (Domain.symbolic []);
  Alcotest.(check bool) "symbolic keeps order" true
    (match Domain.symbolic [ "b"; "a"; "b" ] with
    | Domain.Symbolic [ "b"; "a" ] -> true
    | _ -> false)

let test_domain_queries () =
  let c = Domain.continuous 1. 5. in
  Alcotest.(check bool) "singleton point" true (Domain.is_singleton (Domain.point 2.));
  Alcotest.(check (option (float 0.))) "singleton value" (Some 2.)
    (Domain.singleton_value (Domain.point 2.));
  Alcotest.(check bool) "mem_num" true (Domain.mem_num 3. c);
  Alcotest.(check bool) "not mem_num" false (Domain.mem_num 6. c);
  Alcotest.(check (option (float 0.))) "lowest" (Some 1.) (Domain.lowest c);
  Alcotest.(check (option (float 0.))) "highest" (Some 5.) (Domain.highest c);
  Alcotest.(check (option (float 0.))) "midpoint" (Some 3.) (Domain.midpoint c);
  check_float "measure" 4. (Domain.measure c);
  let f = Domain.finite [ 1.; 2.; 4. ] in
  Alcotest.(check (option (float 0.))) "finite midpoint" (Some 2.)
    (Domain.midpoint f);
  check_float "finite measure" 2. (Domain.measure f)

let test_domain_refine () =
  let c = Domain.continuous 0. 10. in
  Alcotest.(check dom) "narrows" (Domain.continuous 2. 5.)
    (Domain.refine c (Interval.make 2. 5.));
  Alcotest.(check dom) "empty when disjoint" Domain.Empty
    (Domain.refine c (Interval.make 11. 12.));
  let f = Domain.finite [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check dom) "finite filtered" (Domain.finite [ 2.; 3. ])
    (Domain.refine f (Interval.make 1.5 3.5));
  let s = Domain.symbolic [ "x" ] in
  Alcotest.(check dom) "symbolic untouched" s (Domain.refine s (Interval.make 0. 1.))

let test_relative_measure () =
  let initial = Domain.continuous 0. 10. in
  check_float "half" 0.5
    (Domain.relative_measure ~initial (Domain.continuous 0. 5.));
  check_float "singleton initial gives 1" 1.
    (Domain.relative_measure ~initial:(Domain.point 3.) (Domain.point 3.));
  check_float "empty is 0" 0. (Domain.relative_measure ~initial Domain.Empty)

let suite =
  [
    ("make validation", `Quick, test_make_validation);
    ("basic queries", `Quick, test_basic_queries);
    ("midpoint unbounded", `Quick, test_midpoint_unbounded);
    ("intersect and hull", `Quick, test_intersect_hull);
    ("division across zero", `Quick, test_div_zero_straddle);
    ("even power straddling zero", `Quick, test_pow_even_straddle);
    ("partial functions", `Quick, test_partial_functions);
    ("certainty tests", `Quick, test_certainty);
    QCheck_alcotest.to_alcotest incl_add;
    QCheck_alcotest.to_alcotest incl_sub;
    QCheck_alcotest.to_alcotest incl_mul;
    QCheck_alcotest.to_alcotest incl_div;
    QCheck_alcotest.to_alcotest incl_min;
    QCheck_alcotest.to_alcotest incl_max;
    QCheck_alcotest.to_alcotest incl_unary;
    QCheck_alcotest.to_alcotest incl_inverse;
    QCheck_alcotest.to_alcotest incl_pow_roundtrip;
    QCheck_alcotest.to_alcotest refine_is_subset;
    ("domain constructors", `Quick, test_domain_constructors);
    ("domain queries", `Quick, test_domain_queries);
    ("domain refine", `Quick, test_domain_refine);
    ("relative measure", `Quick, test_relative_measure);
  ]
