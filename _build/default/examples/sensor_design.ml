(* The MEMS pressure-sensing-system case (Section 3.2), run end to end in
   both modes with a live operation log, then compared over a few seeds.

     dune exec examples/sensor_design.exe *)

open Adpm_core
open Adpm_teamsim
open Adpm_scenarios

let run_verbose mode =
  Printf.printf "\n=== %s run (seed 7) ===\n" (Dpm.mode_to_string mode);
  let cfg = Config.default ~mode ~seed:7 in
  let on_op r =
    Printf.printf "  op %3d %-8s %-12s evals=%3d new-violations=%d%s\n"
      r.Metrics.m_index r.Metrics.m_designer r.Metrics.m_kind
      r.Metrics.m_evaluations r.Metrics.m_new_violations
      (if r.Metrics.m_spin then "  [spin]" else "")
  in
  let outcome = Engine.run ~on_op cfg Sensor.scenario in
  print_endline (Metrics.summary_line outcome.Engine.o_summary);
  outcome

let () =
  print_endline "MEMS-based pressure sensing system: a capacitive pressure";
  print_endline "sensor (mems) and a mixed-signal interface circuit (analog)";
  print_endline "designed concurrently under resolution, yield and range";
  print_endline "requirements. 26 properties, 21 mostly-linear constraints.";
  let conventional = run_verbose Dpm.Conventional in
  let adpm = run_verbose Dpm.Adpm in

  (* show the final design the ADPM team converged on *)
  print_endline "\n=== final ADPM design ===";
  let net = Dpm.network adpm.Engine.o_dpm in
  List.iter
    (fun prop ->
      match Adpm_csp.Network.assigned_num net prop with
      | Some v -> Printf.printf "  %-16s = %10.3f\n" prop v
      | None -> ())
    [
      "radius"; "thickness"; "gap"; "base-cap"; "sensitivity"; "max-pressure";
      "yield"; "amp-gain"; "adc-bits"; "bias-current"; "interface-power";
    ];
  ignore conventional;

  print_endline "\n=== 10-seed comparison (Fig. 9 cell) ===";
  let seeds = List.init 10 (fun i -> i + 1) in
  let agg mode =
    Report.aggregate
      (Engine.run_many (Config.default ~mode ~seed:0) Sensor.scenario ~seeds)
  in
  print_string
    (Report.comparison_table ~title:"sensor, 10 seeds"
       [ agg Dpm.Conventional; agg Dpm.Adpm ])
