(* Quickstart: build a tiny constraint network by hand, propagate it, read
   the heuristic-support data, then run the same design twice through
   TeamSim — once conventionally, once with ADPM — and compare.

     dune exec examples/quickstart.exe *)

open Adpm_interval
open Adpm_expr
open Adpm_csp
open Adpm_core
open Adpm_teamsim

let () =
  print_endline "=== 1. A network of constraints ===";
  (* Two properties of a receiver and a power budget: the paper's
     introductory example constraint  Pf + Ps <= Pm. *)
  let net = Network.create () in
  Network.add_prop net "front-end-power" (Domain.continuous 10. 200.);
  Network.add_prop net "deserializer-power" (Domain.continuous 5. 150.);
  Network.add_prop net "power-budget" (Domain.continuous 50. 300.);
  let budget =
    Network.add_constraint net ~name:"PowerBudget"
      Expr.(var "front-end-power" + var "deserializer-power")
      Constr.Le (Expr.var "power-budget")
  in
  let balance =
    Network.add_constraint net ~name:"PowerBalance"
      (Expr.var "front-end-power") Constr.Ge
      Expr.(scale 0.5 (Expr.var "deserializer-power"))
  in
  Network.assign net "power-budget" (Value.Num 120.);
  Printf.printf "constraints: %s / %s\n" (Constr.to_string budget)
    (Constr.to_string balance);

  print_endline "\n=== 2. Propagation computes feasible subspaces ===";
  let outcome = Propagate.run_and_apply net in
  List.iter
    (fun (prop, d) ->
      Printf.printf "  feasible %-20s = %s\n" prop (Domain.to_string d))
    outcome.Propagate.feasible;
  Printf.printf "  (%d constraint evaluations)\n" outcome.Propagate.evaluations;

  print_endline "\n=== 3. Heuristic-support data (Section 2.3) ===";
  List.iter
    (fun info -> Format.printf "  %a@." Heuristic_data.pp_prop_info info)
    (Heuristic_data.mine net);

  print_endline "\n=== 4. The same design process, simulated both ways ===";
  let scenario = Adpm_scenarios.Simple.scenario in
  List.iter
    (fun mode ->
      let cfg = Config.default ~mode ~seed:9 in
      let result = Engine.run cfg scenario in
      Printf.printf "  %s\n" (Metrics.summary_line result.Engine.o_summary))
    [ Dpm.Conventional; Dpm.Adpm ];
  print_endline "\nADPM completes in fewer designer operations but spends more";
  print_endline "constraint evaluations - the paper's headline trade-off."
