(* The Section 2.4 walkthrough, step by step, with the Minerva III browser
   views rendered after each operation — reproduces Figs. 2, 3 and 4.

     dune exec examples/lna_walkthrough.exe *)

open Adpm_csp
open Adpm_core
open Adpm_scenarios

let step n text = Printf.printf "\n--- step %d: %s ---\n\n" n text

let () =
  let dpm = Lna.build ~adjustable_requirements:true () ~mode:Dpm.Adpm in
  let net = Dpm.network dpm in
  let top = 0 and analog = 1 and filter = 2 in

  print_endline "Team-based design of a MEMS-based wireless receiver front-end";
  print_endline "(Section 2.4): a leader, a device engineer, and an analog";
  print_endline "circuit designer work concurrently under gain, power and";
  print_endline "impedance constraints.";

  step 1 "the device engineer adjusts the beam length to 13 um";
  let r =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"device" ~problem:filter
         [ (Lna.beam_length, Value.Num 13.) ])
  in
  Printf.printf "(operation triggered %d constraint evaluations)\n\n"
    r.Dpm.r_evaluations;
  print_endline "Fig. 2 - the circuit designer's object browser now shows the";
  print_endline "value sets not found to be infeasible:";
  print_newline ();
  print_endline (Browser.object_browser dpm "LNA+Mixer");
  print_endline
    "The Freq-ind window (0.174255, 0.5) is small compared with the";
  print_endline
    "Diff-pair-W window (2.5, 3.698) - so the inductor design comes first.";

  step 2 "Fig. 3 - constraints in which each property appears";
  print_endline (Browser.property_browser dpm ~props:[ Lna.diff_pair_w; Lna.freq_ind ]);
  Printf.printf "beta(Diff-pair-W) = %d: power consumption, input impedance, gain\n"
    (Network.beta net Lna.diff_pair_w);

  step 3 "the designer sets the load inductor to 0.2 uH (no conflict)";
  let r =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"circuit" ~problem:analog
         [ (Lna.freq_ind, Value.Num 0.2) ])
  in
  Printf.printf "newly violated: %d\n" (List.length r.Dpm.r_newly_violated);

  step 4 "the pair is sized at 2.5 um - smallest feasible, lowest power";
  let r =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"circuit" ~problem:analog
         [ (Lna.diff_pair_w, Value.Num 2.5) ])
  in
  List.iter
    (fun cid ->
      Printf.printf "VIOLATION: %s\n"
        (Network.find_constraint net cid).Constr.name)
    r.Dpm.r_newly_violated;

  step 5 "the leader tightens the input impedance requirement to 40 Ohm";
  let r =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"leader" ~problem:top
         [ (Lna.min_zin, Value.Num 40.) ])
  in
  List.iter
    (fun cid ->
      Printf.printf "VIOLATION: %s\n"
        (Network.find_constraint net cid).Constr.name)
    r.Dpm.r_newly_violated;

  step 6 "Fig. 4 - the conflict-resolution view";
  print_endline
    (Browser.conflict_browser dpm
       ~props:[ Lna.diff_pair_w; Lna.freq_ind; Lna.min_zin ]);
  Printf.printf
    "Diff-pair-W is connected to %d violations - the repair target.\n"
    (Network.alpha net Lna.diff_pair_w);

  step 7 "larger transistors improve gain and matching: W := 3.5 um";
  let r =
    Dpm.apply dpm
      (Operator.synthesis ~designer:"circuit" ~problem:analog
         ~motivated_by:(Dpm.known_violations dpm)
         [ (Lna.diff_pair_w, Value.Num 3.5) ])
  in
  List.iter
    (fun cid ->
      Printf.printf "resolved: %s\n" (Network.find_constraint net cid).Constr.name)
    r.Dpm.r_resolved;
  Printf.printf "remaining violations: %d\n"
    (List.length (Dpm.known_violations dpm));
  print_endline "\nBoth violations fixed with a single iteration - as published."
