examples/lna_walkthrough.mli:
