examples/quickstart.ml: Adpm_core Adpm_csp Adpm_expr Adpm_interval Adpm_scenarios Adpm_teamsim Config Constr Domain Dpm Engine Expr Format Heuristic_data List Metrics Network Printf Propagate Value
