examples/receiver_design.ml: Adpm_core Adpm_scenarios Adpm_teamsim Config Dpm Engine List Metrics Printf Receiver Scenario Simple_dddl
