examples/receiver_design.mli:
