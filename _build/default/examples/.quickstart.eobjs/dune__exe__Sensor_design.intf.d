examples/sensor_design.mli:
