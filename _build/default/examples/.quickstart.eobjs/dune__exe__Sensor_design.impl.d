examples/sensor_design.ml: Adpm_core Adpm_csp Adpm_scenarios Adpm_teamsim Config Dpm Engine List Metrics Printf Report Sensor
