examples/lna_walkthrough.ml: Adpm_core Adpm_csp Adpm_scenarios Browser Constr Dpm List Lna Network Operator Printf Value
