examples/quickstart.mli:
